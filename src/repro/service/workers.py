"""The worker pool: threads draining the job queue.

Workers are *threads*, not processes: one verification job spends its
time in the atom-graph engine's table builds and graph passes, which
the existing process-pool precompute (``AtomGraphEngine.precompute``)
already shards when a single build is big enough to matter. What the
service needs from its pool is cheap shared access to the resident
:class:`~repro.service.store.SnapshotStore` — which a process pool
would have to re-pickle per job — plus strict priority ordering, which
one shared queue gives for free.

Per-job resilience lives here:

* **timeout** — a job whose per-job deadline passed while it queued is
  failed with :class:`JobTimeoutError` instead of burning a worker, and
  the deadline is re-checked before every retry so backoff can never
  extend a job past it. A single *running* execution is cooperative —
  it is never preempted mid-attempt;
* **retry with backoff** — executions raising
  :class:`~repro.service.store.DeploymentLostError` (the job's backing
  state left the store mid-flight) are retried up to ``max_retries``
  times with exponential backoff before the failure is surfaced.
"""

from __future__ import annotations

import logging
import threading
import time
from typing import Callable, Optional

from repro.obs import bus
from repro.service.jobs import Job, JobQueue, JobTimeoutError
from repro.service.store import DeploymentLostError, env_int

logger = logging.getLogger(__name__)

#: Default worker-thread count (override: ``MFV_SERVICE_WORKERS``).
DEFAULT_WORKERS = 2


class WorkerPool:
    """Threads executing jobs from one :class:`JobQueue`."""

    def __init__(
        self,
        queue: JobQueue,
        *,
        workers: Optional[int] = None,
        max_retries: int = 2,
        retry_backoff: float = 0.05,
        on_start: Optional[Callable[[Job], None]] = None,
        on_done: Optional[Callable[[Job], None]] = None,
        on_retry: Optional[Callable[[Job, BaseException], None]] = None,
    ) -> None:
        if workers is None:
            workers = env_int("MFV_SERVICE_WORKERS", DEFAULT_WORKERS)
        self.queue = queue
        self.workers = max(1, workers)
        self.max_retries = max(0, max_retries)
        self.retry_backoff = max(0.0, retry_backoff)
        self._on_start = on_start
        self._on_done = on_done
        self._on_retry = on_retry
        #: Drain accounting hook: called with the final counts dict when
        #: a draining stop completes (the service emits the
        #: ``service.drain`` obs event from it).
        self.on_drain: Optional[Callable[[dict], None]] = None
        #: The metrics registry job scopes install as the thread's
        #: ambient plane (set by the owning service; None = default).
        self.registry = None
        self._threads: list[threading.Thread] = []
        self._stopping = threading.Event()
        self._draining = threading.Event()
        self.drained_count = 0

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> None:
        if self._threads:
            return
        self._stopping.clear()
        self._draining.clear()
        for index in range(self.workers):
            thread = threading.Thread(
                target=self._loop,
                name=f"mfv-service-worker-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def stop(self, timeout: float = 5.0, drain: bool = True) -> dict:
        """Stop the pool; returns the drain counts.

        ``drain=True`` (the default) finishes every queued job before
        the workers exit, bounded by ``timeout``; whatever is still
        queued past the deadline is rejected with a structured
        ``draining`` detail — never silently dropped with its waiters
        left blocking. ``drain=False`` restores the old prompt stop
        (workers exit after their current job), but leftovers are still
        rejected, not stranded.
        """
        deadline = time.monotonic() + max(0.0, timeout)
        if drain:
            self._draining.set()
        else:
            self._stopping.set()
        self.queue.close()
        for thread in self._threads:
            thread.join(max(0.05, deadline - time.monotonic()))
        if any(thread.is_alive() for thread in self._threads):
            # Drain ran out of time: force the prompt-stop path and give
            # workers one more short window to notice.
            self._draining.clear()
            self._stopping.set()
            for thread in self._threads:
                thread.join(0.5)
        self._threads = [t for t in self._threads if t.is_alive()]
        leftovers = self.queue.drain_remaining()
        for job in leftovers:
            job.reject(
                {"error": "draining", "detail": "service shut down before "
                 "this job could run"}
            )
            if self._on_done is not None:
                self._on_done(job)
        counts = {"settled": self.drained_count, "rejected": len(leftovers)}
        if drain and self.on_drain is not None:
            self.on_drain(counts)
        return counts

    @property
    def running(self) -> bool:
        return bool(self._threads)

    # -- execution ------------------------------------------------------------

    def _loop(self) -> None:
        while True:
            if self._stopping.is_set() and not self._draining.is_set():
                return
            job = self.queue.pop(timeout=0.2)
            if job is None:
                if self._stopping.is_set() or self.queue.closed:
                    return
                continue
            try:
                self._run_one(job)
                if self._draining.is_set():
                    self.drained_count += 1
            except Exception:  # pragma: no cover - last-resort guard
                logger.exception("worker crashed running job %s", job.id)
                if not job.done:
                    job.fail(RuntimeError("worker crashed"))

    def _expired(self, job: Job) -> bool:
        return (
            job.timeout is not None
            and time.monotonic() - job.submitted_at > job.timeout
        )

    def _run_one(self, job: Job) -> None:
        try:
            # Everything this thread records while the job runs —
            # events, spans, the engine-build histogram — carries the
            # job id (and priority class) for per-job correlation, and
            # lands on the owning service's metrics registry.
            with bus.job_scope(
                job.id, job.priority.name.lower(), registry=self.registry
            ):
                self._execute(job)
        finally:
            if self._on_done is not None:
                self._on_done(job)

    def _execute(self, job: Job) -> None:
        if self._expired(job):
            job.mark_running()
            job.fail(
                JobTimeoutError(
                    f"job {job.id} ({job.label}) missed its "
                    f"{job.timeout}s deadline while queued"
                )
            )
            return
        job.mark_running()
        if self._on_start is not None:
            self._on_start(job)
        attempt = 0
        while True:
            job.attempts = attempt + 1
            try:
                job.finish(job.run())
                return
            except DeploymentLostError as exc:
                if self._expired(job):
                    # The deadline bounds the whole job, retries
                    # included — never back off past it.
                    job.fail(
                        JobTimeoutError(
                            f"job {job.id} ({job.label}) missed its "
                            f"{job.timeout}s deadline after "
                            f"{job.attempts} attempt(s)"
                        )
                    )
                    return
                if attempt >= self.max_retries or self._stopping.is_set():
                    job.fail(exc)
                    return
                if self._on_retry is not None:
                    self._on_retry(job, exc)
                delay = self.retry_backoff * (2**attempt)
                registry = bus.metrics_registry()
                if registry.enabled:
                    registry.histogram(
                        "service.retry_backoff_seconds",
                        "Wall seconds slept before re-running a job",
                    ).observe(delay)
                logger.info(
                    "job %s lost its deployment (%s); retry %d/%d in %.3fs",
                    job.id, exc, attempt + 1, self.max_retries, delay,
                )
                if delay:
                    time.sleep(delay)
                attempt += 1
            except Exception as exc:
                job.fail(exc)
                return
            except BaseException as exc:
                # KeyboardInterrupt/SystemExit: settle waiters so
                # nobody blocks forever, then let the interrupt
                # propagate and terminate the worker loop.
                job.fail(exc)
                raise

    def __repr__(self) -> str:
        return (
            f"WorkerPool(workers={self.workers}, "
            f"running={self.running}, retries={self.max_retries})"
        )
