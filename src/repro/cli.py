"""``mfv`` — the model-free verification command line.

Subcommands::

    mfv [-v|-vv] verify TOPOLOGY [--backend emulation|model]
                                 [--workers N] [--save SNAP.json]
                                 [--trace OUT.jsonl] [--delta-stats]
    mfv diff REFERENCE.json SNAPSHOT.json [--delta-stats]
    mfv trace SNAPSHOT.json NODE DEST
    mfv routes SNAPSHOT.json [NODE]
    mfv demo {fig2,fig3,production} [--trace OUT.jsonl]
    mfv whatif [TOPOLOGY] [--corpus fig2|fig3|production]
               [--mode links|nodes|flaps|k-links] [--k K] [--limit N]
               [--workers N] [--json OUT.json] [--trace OUT.jsonl]
    mfv chaos [TOPOLOGY] [--corpus fig2|fig3|production]
              [--plan acceptance|sampled] [--plan-seed N] [--intensity N]
              [--seeds N|a,b,c] [--temporal] [--json OUT.json]
              [--trace OUT.jsonl]
    mfv ensemble [TOPOLOGY] [--corpus fig2|fig3|production]
                 [--seeds N|a,b,c] [--plans none|acceptance|sampled]
                 [--temporal] [--waypoint DEST_IP:VIA_NODE] [--workers N]
                 [--json OUT.json] [--trace OUT.jsonl]
    mfv temporal [TOPOLOGY] [--corpus fig2|fig3|production]
                 [--flap A-Z] [--flap-hold S] [--replay STREAM.json]
                 [--save-stream OUT.json] [--brute-force]
                 [--max-churn N] [--waypoint DEST_IP:VIA_NODE]
                 [--json OUT.json] [--trace OUT.jsonl]
    mfv obs timeline [--scenario fig2|fig3|whatif] [--topology FILE]
                     [--trace OUT.jsonl]
    mfv obs summary TRACE.jsonl
    mfv obs waterfall TRACE.jsonl JOB_ID
    mfv obs metrics TRACE.jsonl [--format prometheus|records]
    mfv serve [SNAPSHOT.json ...] [--workers N] [--queue-depth N]
              [--store N] [--trace OUT.jsonl] [--journal DIR] [--recover]
              [--worker-mode thread|process]
    mfv submit SNAPSHOT.json QUESTION [--param KEY=VALUE ...]
               [--reference REF.json] [--priority CLASS] [--timeout S]

``verify`` takes a KNE-style topology file (see
:mod:`repro.topo.parser`) whose nodes reference config files, runs the
chosen backend to convergence, reports reachability health, and can
persist the extracted snapshot for later offline queries.
``--delta-stats`` (on ``verify`` and ``diff``) prints how the engine
came to exist: dirty-atom count and reused-vs-rebuilt device indexes
for an incremental derivation, or the fallback reason for a cold build.

``temporal`` verifies the network *during* convergence: it converges a
baseline, flaps one link while recording a checkpoint stream of FIB
deltas, and reports every invariant-violation interval — transient
loops and blackhole windows that a post-convergence check on the final
state cannot see. ``--replay`` re-evaluates a stream saved with
``--save-stream`` offline; ``--brute-force`` rebuilds a cold engine per
checkpoint instead of applying deltas (the correctness oracle). Exit
code 2 means at least one violation interval was found.

``ensemble`` runs the same scenario once per seed (optionally crossed
with fault plans), dedups the converged states by forwarding
fingerprint, and folds every invariant across the set into
holds-always / holds-sometimes / never — each "sometimes" carrying a
witness seed, plan, and (with ``--temporal``) the violating interval.
Exit code 2 means at least one invariant is not holds-always. ``chaos
--seeds`` scores verdict stability over such an ensemble of faulted
runs instead of a single seed.

``obs timeline`` runs a built-in scenario (or a topology file) with the
tracer installed and prints the convergence timeline: per-phase spans,
per-device adjacency-up / last-route-install times, and event counters.
``obs summary`` renders a previously saved ``--trace`` JSONL file,
including the slowest spans and per-span-name duration percentiles.
``obs waterfall`` correlates everything one service job did — submit,
queue, run, engine builds — into a single per-job lifecycle view.
``obs metrics`` re-renders the metrics records in a saved trace as
Prometheus text exposition (or raw JSONL records).

``serve`` starts the continuous verification service and speaks
JSON-lines on stdin/stdout (one request per line; see
:mod:`repro.service.frontend` for the ops). ``--journal DIR`` makes
accepted jobs durable (write-ahead log + snapshot manifest);
``--recover`` replays that journal after a crash before serving;
``--worker-mode process`` runs supervised, crash-isolated worker
processes. SIGTERM drains gracefully: admissions stop, in-flight jobs
settle (or stay journaled), and the process exits 0. ``submit`` is the
one-shot client shape: spin up a service, load snapshots, run one
question through the queue, print the answer.

``-v`` raises log verbosity to INFO, ``-vv`` to DEBUG (module-level
``logging``; warnings such as ignored link cuts always print).
"""

from __future__ import annotations

import argparse
import logging
import sys

from repro.core.pipeline import ModelFreeBackend, NativeBatfishBackend, phase
from repro.core.snapshot import Snapshot
from repro.obs import ConvergenceTimeline, read_jsonl, summary_text, tracing, write_jsonl
from repro.pybf.session import Session
from repro.topo.parser import load_topology
from repro.verify.engine import engine_for
from repro.verify.invariants import detect_blackholes, detect_loops
from repro.verify.reachability import verify_pairwise_reachability_text


def _print_delta_stats(engine) -> None:
    """The ``--delta-stats`` block: how this engine came to exist
    relative to its lineage base (or why it could not derive)."""
    stats = getattr(engine, "delta_stats", None)
    print("delta stats:")
    if stats is None:
        print("  cold build (no lineage base offered)")
        return
    if stats.fallback is not None:
        print(f"  cold build, delta fallback: {stats.fallback}")
        print(f"  atoms: {stats.total_atoms}")
        return
    print(
        f"  dirty atoms: {stats.dirty_atoms}/{stats.total_atoms} "
        f"({stats.dirty_fraction:.1%})"
    )
    print(f"  reused verdict tables: {stats.reused_tables}")
    print(
        f"  device indexes: {stats.reused_indexes} reused, "
        f"{stats.rebuilt_indexes} rebuilt "
        f"({', '.join(stats.touched_devices) or 'none touched'})"
    )
    print(f"  apply time: {stats.apply_seconds * 1e3:.1f} ms")


def _run_verify(args: argparse.Namespace) -> int:
    topology = load_topology(args.topology)
    print(f"Loaded {topology}")
    if args.backend == "model":
        snapshot = NativeBatfishBackend(topology).run()
        unrecognized = snapshot.metadata["unrecognized_lines"]
        total = sum(unrecognized.values())
        if total:
            print(f"warning: model failed to parse {total} lines:")
            for name, count in sorted(unrecognized.items()):
                if count:
                    print(f"  {name}: {count} unrecognized lines")
    else:
        backend = ModelFreeBackend(topology, quiet_period=args.quiet_period)
        snapshot = backend.run(seed=args.seed)
        print(
            f"Emulation: startup {snapshot.startup_seconds / 60:.1f} sim-min, "
            f"convergence {snapshot.convergence_seconds:.1f} sim-s"
        )
    phases = snapshot.metadata.setdefault("phases", {})
    with phase("verify", None, phases):
        dataplane = snapshot.dataplane
        # Build the shared atom-graph engine up front (optionally across
        # worker processes); every check below answers from its tables.
        engine = engine_for(dataplane)
        engine.precompute(workers=args.workers)
        if args.delta_stats:
            _print_delta_stats(engine)
        print(verify_pairwise_reachability_text(dataplane))
        loops = detect_loops(dataplane)
        print(f"forwarding loops: {len(loops)}")
        for row in loops[:10]:
            print(f"  {row}")
        blackholes = detect_blackholes(dataplane)
        print(f"blackholed owned destinations: {len(blackholes)}")
    if args.save:
        snapshot.save(args.save)
        print(f"snapshot saved to {args.save}")
    return 0 if not loops else 2


def _cmd_verify(args: argparse.Namespace) -> int:
    if not args.trace:
        return _run_verify(args)
    with tracing() as tracer:
        code = _run_verify(args)
    lines = write_jsonl(tracer, args.trace)
    print(f"trace written to {args.trace} ({lines} records)")
    return code


def _cmd_diff(args: argparse.Namespace) -> int:
    reference = Snapshot.load(args.reference)
    snapshot = Snapshot.load(args.snapshot)
    bf = Session()
    bf.init_snapshot(reference, name="reference")
    bf.init_snapshot(snapshot, name="snapshot")
    answer = bf.q.differentialReachability().answer(
        snapshot="snapshot", reference_snapshot="reference"
    )
    print(answer)
    if args.delta_stats:
        # The differential answer derives the snapshot's engine from
        # the reference's via the delta path; the (content-cached)
        # engine carries the derivation record.
        _print_delta_stats(engine_for(snapshot.dataplane))
    regressed = sum(1 for row in answer.frame() if row["Regressed"])
    return 2 if regressed else 0


def _cmd_trace(args: argparse.Namespace) -> int:
    snapshot = Snapshot.load(args.snapshot)
    bf = Session()
    bf.init_snapshot(snapshot)
    answer = bf.q.traceroute(
        startLocation=args.node, dst=args.destination
    ).answer()
    print(answer)
    return 0


def _cmd_routes(args: argparse.Namespace) -> int:
    snapshot = Snapshot.load(args.snapshot)
    bf = Session()
    bf.init_snapshot(snapshot)
    print(bf.q.routes(nodes=args.node).answer())
    return 0


def _run_demo(args: argparse.Namespace) -> int:
    from repro.protocols.timers import FAST_TIMERS

    if args.scenario == "fig3":
        from repro.corpus.fig3 import fig3_scenario

        scenario = fig3_scenario()
        emulated = ModelFreeBackend(
            scenario.topology, timers=FAST_TIMERS, quiet_period=5.0
        ).run(snapshot_name="emulated")
        model = NativeBatfishBackend(scenario.topology).run(
            snapshot_name="model"
        )
        bf = Session()
        bf.init_snapshot(emulated, name="emulated")
        bf.init_snapshot(model, name="model")
        print(
            bf.q.differentialReachability().answer(
                snapshot="model", reference_snapshot="emulated"
            )
        )
        return 0
    if args.scenario == "production":
        from repro.core.context import ScenarioContext
        from repro.corpus.production import production_scenario, scaled_timers

        scenario = production_scenario(
            args.nodes, peers=2, routes_per_peer=args.routes, seed=7
        )
        backend = ModelFreeBackend(
            scenario.topology,
            timers=scaled_timers(args.routes),
            quiet_period=30.0,
        )
        snapshot = backend.run(
            ScenarioContext(name="prod", injectors=tuple(scenario.injectors))
        )
        print(
            f"startup {snapshot.startup_seconds / 60:.1f} sim-min, "
            f"convergence {snapshot.convergence_seconds / 60:.1f} sim-min, "
            f"{snapshot.metadata['injected_routes']} routes injected"
        )
        sizes = sorted(len(d) for d in snapshot.dataplane.devices.values())
        print(f"FIB sizes: min {sizes[0]}, max {sizes[-1]}")
        loops = detect_loops(snapshot.dataplane)
        print(f"forwarding loops: {len(loops)}")
        return 0 if not loops else 2
    from repro.corpus.fig2 import fig2_scenario

    scenario = fig2_scenario()
    healthy = ModelFreeBackend(
        scenario.topology, timers=FAST_TIMERS, quiet_period=5.0
    ).run(snapshot_name="healthy")
    buggy = ModelFreeBackend(
        scenario.buggy_topology(), timers=FAST_TIMERS, quiet_period=5.0
    ).run(snapshot_name="buggy")
    bf = Session()
    bf.init_snapshot(healthy, name="healthy")
    bf.init_snapshot(buggy, name="buggy")
    print(
        bf.q.differentialReachability().answer(
            snapshot="buggy", reference_snapshot="healthy"
        )
    )
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    if not args.trace:
        return _run_demo(args)
    with tracing() as tracer:
        code = _run_demo(args)
    lines = write_jsonl(tracer, args.trace)
    print(f"trace written to {args.trace} ({lines} records)")
    return code


def _whatif_setup(args: argparse.Namespace):
    """Resolve the whatif target: (topology, context, timers, quiet)."""
    from repro.core.context import ScenarioContext
    from repro.protocols.timers import FAST_TIMERS, PRODUCTION_TIMERS

    context = ScenarioContext()
    if args.topology:
        topology = load_topology(args.topology)
        timers = FAST_TIMERS if args.fast else PRODUCTION_TIMERS
        quiet = args.quiet_period or (5.0 if args.fast else 30.0)
    elif args.corpus == "production":
        from repro.corpus.production import production_scenario, scaled_timers

        scenario = production_scenario(
            args.nodes, peers=2, routes_per_peer=args.routes, seed=7
        )
        topology = scenario.topology
        context = ScenarioContext(
            name="prod", injectors=tuple(scenario.injectors)
        )
        timers = scaled_timers(args.routes)
        quiet = args.quiet_period or 30.0
    elif args.corpus == "fig3":
        from repro.corpus.fig3 import fig3_scenario

        topology = fig3_scenario().topology
        timers = FAST_TIMERS
        quiet = args.quiet_period or 5.0
    else:
        from repro.corpus.fig2 import fig2_scenario

        topology = fig2_scenario().topology
        timers = FAST_TIMERS
        quiet = args.quiet_period or 5.0
    return topology, context, timers, quiet


def _whatif_scenarios(args: argparse.Namespace, topology):
    from repro.whatif import (
        k_link_failures,
        link_flap_scenarios,
        single_link_failures,
        single_node_failures,
    )

    if args.mode == "nodes":
        scenarios = list(single_node_failures(topology))
    elif args.mode == "flaps":
        scenarios = list(
            link_flap_scenarios(topology, hold_seconds=args.flap_hold)
        )
    elif args.mode == "k-links":
        scenarios = list(k_link_failures(topology, k=args.k))
    else:
        scenarios = list(single_link_failures(topology))
    if args.limit is not None:
        scenarios = scenarios[: args.limit]
    return scenarios


def _run_whatif(args: argparse.Namespace) -> int:
    from repro.whatif import WhatIfCampaign

    topology, context, timers, quiet = _whatif_setup(args)
    scenarios = _whatif_scenarios(args, topology)
    if not scenarios:
        print("no scenarios to run")
        return 0
    print(
        f"what-if campaign over {topology.name}: "
        f"{len(scenarios)} {args.mode} scenario(s)"
    )
    campaign = WhatIfCampaign(
        topology,
        scenarios,
        context=context,
        timers=timers,
        quiet_period=quiet,
        seed=args.seed,
    )
    report = campaign.run(workers=args.workers)
    print()
    print(report.render())
    if args.json:
        import json

        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report.to_dict(), handle, indent=2)
        print(f"report written to {args.json}")
    return 2 if report.worst_severity else 0


def _cmd_whatif(args: argparse.Namespace) -> int:
    if not args.trace:
        return _run_whatif(args)
    with tracing() as tracer:
        code = _run_whatif(args)
    lines = write_jsonl(tracer, args.trace)
    print(f"trace written to {args.trace} ({lines} records)")
    return code


def _parse_seeds(spec):
    """``--seeds`` spec: "8" means seeds 0..7, "1,5,9" means exactly those."""
    if spec is None:
        return None
    try:
        if "," in spec:
            return tuple(int(part) for part in spec.split(",") if part.strip())
        return tuple(range(int(spec)))
    except ValueError:
        raise SystemExit(f"--seeds wants a count or a comma list, not {spec!r}")


def _run_chaos(args: argparse.Namespace) -> int:
    from repro.chaos import acceptance_plan, run_chaos, sampled_plan

    topology, context, timers, quiet = _whatif_setup(args)
    names = sorted(spec.name for spec in topology.nodes)
    if args.plan == "acceptance":
        plan = acceptance_plan(names, crash_at=args.crash_at)
    else:
        plan = sampled_plan(
            names,
            seed=args.plan_seed,
            intensity=args.intensity,
            crash=not args.no_crash,
            crash_at=args.crash_at,
        )
    print(f"chaos run over {topology.name}: plan {plan.name!r}, "
          f"{len(plan)} fault(s)")
    for line in plan.describe()["faults"]:
        print(f"  - {line}")
    report = run_chaos(
        topology,
        plan,
        context=context,
        seed=args.seed,
        seeds=_parse_seeds(args.seeds),
        timers=timers,
        quiet_period=quiet,
        temporal=True if args.temporal else None,
    )
    print()
    print(f"survived:                  {'yes' if report.survived else 'NO'}")
    print(f"faults fired:              {len(report.fault_log)}")
    print(f"extraction retries:        {report.total_retries}")
    print(f"degraded nodes:            "
          f"{', '.join(sorted(report.degraded_nodes)) or '(none)'}")
    print(f"verdict stability:         {report.stability:.4f}")
    print(f"degraded verdict fraction: "
          f"{report.degraded_verdict_fraction:.4f}")
    if report.ensemble:
        per_seed = report.ensemble["per_seed_stability"]
        print(f"stability ensemble:        {len(per_seed)} seed(s), "
              f"{report.ensemble['distinct_faulted_outcomes']} distinct "
              f"faulted outcome(s)")
        for run_seed, value in per_seed.items():
            print(f"  seed {run_seed:<4} stability {value:.4f}")
    if report.temporal:
        print(f"transient intervals:       "
              f"{report.temporal.get('transient', 0)} "
              f"(over {report.temporal.get('checkpoints', 0)} checkpoints)")
    if args.json:
        import json

        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report.to_dict(), handle, indent=2)
        print(f"report written to {args.json}")
    return 0 if report.survived else 2


def _cmd_chaos(args: argparse.Namespace) -> int:
    if not args.trace:
        return _run_chaos(args)
    with tracing() as tracer:
        code = _run_chaos(args)
    lines = write_jsonl(tracer, args.trace)
    print(f"trace written to {args.trace} ({lines} records)")
    return code


def _ensemble_plans(args: argparse.Namespace, topology) -> list:
    """The fault-plan axis: always includes the fault-free member."""
    plans = [None]
    if args.plans == "none":
        return plans
    names = sorted(spec.name for spec in topology.nodes)
    if args.plans == "acceptance":
        from repro.chaos import acceptance_plan

        plans.append(acceptance_plan(names, crash_at=args.crash_at))
    else:
        from repro.chaos import sampled_plan

        for i in range(args.plan_count):
            plans.append(
                sampled_plan(
                    names,
                    seed=args.plan_seed + i,
                    intensity=args.intensity,
                    crash_at=args.crash_at,
                )
            )
    return plans


def _run_ensemble(args: argparse.Namespace) -> int:
    from repro.ensemble import (
        EnsembleRunner,
        Waypoint,
        default_ensemble_invariants,
    )

    topology, context, timers, quiet = _whatif_setup(args)
    seeds = _parse_seeds(args.seeds)
    plans = _ensemble_plans(args, topology)
    invariants = default_ensemble_invariants()
    if args.waypoint:
        dst, sep, via = args.waypoint.partition(":")
        if not sep or not dst or not via:
            raise SystemExit("--waypoint wants DEST_IP:VIA_NODE")
        invariants.append(Waypoint(dst, via))
    runner = EnsembleRunner(
        topology,
        context=context,
        seeds=seeds,
        plans=plans,
        invariants=invariants,
        temporal=True if args.temporal else None,
        timers=timers,
        quiet_period=quiet,
    )
    print(
        f"ensemble over {topology.name}: {len(runner.seeds)} seed(s) x "
        f"{len(runner.plans)} plan(s) = {len(runner.matrix)} run(s)"
    )
    report = runner.run(workers=args.workers)
    print()
    print(report.render())
    if args.json:
        import json

        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report.to_dict(), handle, indent=2)
        print(f"report written to {args.json}")
    return 2 if report.unstable else 0


def _cmd_ensemble(args: argparse.Namespace) -> int:
    if not args.trace:
        return _run_ensemble(args)
    with tracing() as tracer:
        code = _run_ensemble(args)
    lines = write_jsonl(tracer, args.trace)
    print(f"trace written to {args.trace} ({lines} records)")
    return code


def _temporal_invariants(args: argparse.Namespace):
    from repro.temporal import (
        BlackholeWindow,
        MaxChurn,
        NoTransientLoop,
        WaypointAlways,
    )

    invariants = [
        NoTransientLoop(max_sim_s=args.max_loop_s),
        BlackholeWindow(max_sim_s=args.max_blackhole_s),
    ]
    if args.max_churn is not None:
        invariants.append(MaxChurn(args.max_churn))
    if args.waypoint:
        dst, sep, via = args.waypoint.partition(":")
        if not sep or not dst or not via:
            raise SystemExit("--waypoint wants DEST_IP:VIA_NODE")
        invariants.append(WaypointAlways(dst, via))
    return invariants


def _temporal_scenario(args: argparse.Namespace, topology):
    from repro.whatif import link_flap_scenarios

    scenarios = list(
        link_flap_scenarios(topology, hold_seconds=args.flap_hold)
    )
    if not scenarios:
        raise SystemExit(f"topology {topology.name} has no links to flap")
    if args.flap:
        for scenario in scenarios:
            if args.flap in scenario.name:
                return scenario
        raise SystemExit(
            f"no link matching {args.flap!r}; "
            f"have {', '.join(s.name for s in scenarios)}"
        )
    return scenarios[0]


def _run_temporal(args: argparse.Namespace) -> int:
    from repro.temporal import (
        CheckpointRecorder,
        CheckpointStream,
        evaluate_stream,
    )

    invariants = _temporal_invariants(args)
    if args.replay:
        stream = CheckpointStream.load(args.replay)
        print(
            f"replaying {args.replay}: {len(stream)} checkpoint(s) over "
            f"{len(stream.initial.dataplane.devices)} device(s)"
        )
    else:
        topology, context, timers, quiet = _whatif_setup(args)
        backend = ModelFreeBackend(
            topology, timers=timers, quiet_period=quiet
        )
        print(f"deploying {topology.name} and converging a baseline...")
        backend.run(context, seed=args.seed)
        assert backend.last_run is not None
        deployment = backend.last_run.deployment
        scenario = _temporal_scenario(args, topology)
        print(f"recording checkpoints through {scenario.name!r}...")
        recorder = CheckpointRecorder(deployment)
        recorder.arm()
        scenario.apply(deployment)
        deployment.wait_converged(
            quiet_period=max(quiet, scenario.min_quiet_period)
        )
        stream = recorder.finalize()
        if args.save_stream:
            stream.save(args.save_stream)
            print(f"stream written to {args.save_stream}")
    report = evaluate_stream(
        stream, invariants, use_delta=not args.brute_force
    )
    print()
    print(report.render())
    # What a snapshot-based check sees of the same episode: only the
    # final, converged state.
    final = stream.final.dataplane
    loops = len(detect_loops(final))
    blackholes = len(detect_blackholes(final))
    print()
    print(
        f"post-convergence verify on the final state: "
        f"{loops} loop(s), {blackholes} blackhole(s)"
    )
    transient = len(report.transient)
    if transient:
        print(
            f"temporal verification found {transient} transient "
            f"interval(s) a post-convergence check cannot see"
        )
    if args.json:
        import json

        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report.to_dict(), handle, indent=2)
        print(f"report written to {args.json}")
    return 2 if report.intervals else 0


def _cmd_temporal(args: argparse.Namespace) -> int:
    if not args.trace:
        return _run_temporal(args)
    with tracing() as tracer:
        code = _run_temporal(args)
    lines = write_jsonl(tracer, args.trace)
    print(f"trace written to {args.trace} ({lines} records)")
    return code


def _obs_timeline_whatif(args: argparse.Namespace) -> int:
    """Trace a small what-if campaign and render its timeline: the
    per-scenario ``whatif:<name>`` phase spans nest apply/converge/
    extract/verify/revert, and the verdicts section ranks the damage."""
    from repro.corpus.fig2 import fig2_scenario
    from repro.protocols.timers import FAST_TIMERS
    from repro.whatif import WhatIfCampaign, single_link_failures

    topology = fig2_scenario().topology
    scenarios = list(single_link_failures(topology))[:2]
    with tracing() as tracer:
        campaign = WhatIfCampaign(
            topology,
            scenarios,
            timers=FAST_TIMERS,
            quiet_period=args.quiet_period,
            seed=args.seed,
        )
        report = campaign.run()
    timeline = ConvergenceTimeline.from_tracer(tracer)
    print(
        timeline.render(
            f"What-if timeline - fig2, {len(scenarios)} scenarios "
            f"(seed {args.seed})"
        )
    )
    print()
    print(report.render())
    if args.trace:
        lines = write_jsonl(tracer, args.trace)
        print(f"trace written to {args.trace} ({lines} records)")
    return 2 if report.worst_severity else 0


def _cmd_obs_timeline(args: argparse.Namespace) -> int:
    from repro.protocols.timers import FAST_TIMERS

    if not args.topology and args.scenario == "whatif":
        return _obs_timeline_whatif(args)
    if args.topology:
        topology = load_topology(args.topology)
        title = f"Convergence timeline - {topology.name}"
    elif args.scenario == "fig3":
        from repro.corpus.fig3 import fig3_scenario

        topology = fig3_scenario().topology
        title = "Convergence timeline - fig3 (3-node line)"
    else:
        from repro.corpus.fig2 import fig2_scenario

        topology = fig2_scenario().topology
        title = "Convergence timeline - fig2 (6-node demo)"

    with tracing() as tracer:
        backend = ModelFreeBackend(
            topology, timers=FAST_TIMERS, quiet_period=args.quiet_period
        )
        snapshot = backend.run(seed=args.seed, verify=True)
    counts = snapshot.metadata["verification"]
    timeline = ConvergenceTimeline.from_tracer(tracer)
    print(timeline.render(f"{title} (seed {args.seed})"))
    print()
    print(
        f"Verification: {counts['loops']} forwarding loops, "
        f"{counts['blackholes']} blackholed destinations, "
        f"{counts['unreachable_pairs']} unreachable device pairs"
    )
    if args.trace:
        lines = write_jsonl(tracer, args.trace)
        print(f"trace written to {args.trace} ({lines} records)")
    return 0 if not counts["loops"] else 2


def _cmd_obs_summary(args: argparse.Namespace) -> int:
    tracer = read_jsonl(args.trace_file)
    print(summary_text(tracer, title=f"Trace summary - {args.trace_file}"))
    return 0


def _cmd_obs_waterfall(args: argparse.Namespace) -> int:
    from repro.obs.timeline import waterfall_text

    tracer = read_jsonl(args.trace_file)
    try:
        print(waterfall_text(tracer, args.job_id))
    except KeyError as exc:
        print(exc.args[0] if exc.args else str(exc))
        return 2
    return 0


def _cmd_obs_metrics(args: argparse.Namespace) -> int:
    from repro.obs import read_metrics_jsonl, render_prometheus
    from repro.obs.metrics import exposition_format

    registry = read_metrics_jsonl(args.trace_file)
    fmt = args.format or exposition_format()
    if fmt == "records":
        import json

        for record in registry.collect():
            print(json.dumps(record, sort_keys=True))
    else:
        text = render_prometheus(registry)
        if text:
            print(text, end="")
    return 0


def _run_serve(args: argparse.Namespace) -> int:
    import signal as signal_mod

    from repro.service import VerificationService
    from repro.service.frontend import serve_loop

    kwargs = {
        "workers": args.workers,
        "max_queue_depth": args.queue_depth,
        "worker_mode": args.worker_mode,
    }
    if args.recover:
        if not args.journal:
            print("--recover requires --journal", file=sys.stderr)
            return 2
        service, report = VerificationService.recover(args.journal, **kwargs)
        print(
            f"recovered from {args.journal}: "
            f"{report.snapshots_recovered} snapshot(s), "
            f"{report.jobs_requeued} job(s) requeued, "
            f"{report.jobs_dead_lettered} dead-lettered "
            f"in {report.wall_seconds:.3f}s",
            file=sys.stderr, flush=True,
        )
    else:
        service = VerificationService(journal_dir=args.journal, **kwargs)
    if args.store is not None:
        service.store.capacity = max(1, args.store)
    for path in args.snapshots:
        name, fingerprint = service.load_snapshot(path)
        print(
            f"loaded {name} ({fingerprint:#x})", file=sys.stderr, flush=True
        )

    def _on_sigterm(signum, frame):
        raise SystemExit(0)

    previous = signal_mod.signal(signal_mod.SIGTERM, _on_sigterm)
    handled = 0
    try:
        service.start()
        handled = serve_loop(service)
    except SystemExit:
        # Graceful drain: stop admitting, settle (or journal) what's
        # in flight, flush the journal, exit 0.
        print("SIGTERM: draining service", file=sys.stderr, flush=True)
    finally:
        counts = service.stop()
        signal_mod.signal(signal_mod.SIGTERM, previous)
        print(
            f"drained: {counts.get('settled', 0)} settled, "
            f"{counts.get('rejected', 0)} rejected",
            file=sys.stderr, flush=True,
        )
    print(f"served {handled} request(s)", file=sys.stderr)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    if not args.trace:
        return _run_serve(args)
    with tracing() as tracer:
        code = _run_serve(args)
    lines = write_jsonl(tracer, args.trace)
    print(f"trace written to {args.trace} ({lines} records)", file=sys.stderr)
    return code


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.service import JobFailedError, OverloadedError, VerificationService

    params = {}
    for item in args.param or []:
        key, sep, value = item.partition("=")
        if not sep:
            print(f"bad --param {item!r} (expected KEY=VALUE)")
            return 2
        params[key] = value
    with VerificationService(workers=args.workers) as service:
        service.load_snapshot(args.snapshot, name="snapshot")
        kwargs = {"snapshot": "snapshot"}
        if args.reference:
            service.load_snapshot(args.reference, name="reference")
            kwargs["reference_snapshot"] = "reference"
        job = service.submit(
            args.question,
            params,
            priority=args.priority,
            timeout=args.timeout,
            **kwargs,
        )
        try:
            result = job.result(args.timeout)
        except OverloadedError as exc:
            print(f"rejected: {exc}")
            return 3
        except JobFailedError as exc:
            print(f"failed: {exc.__cause__ or exc}")
            return 2
    print(result.value)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="mfv", description="Model-free network verification"
    )
    parser.add_argument(
        "-v", "--verbose",
        action="count",
        default=0,
        help="-v for INFO logs, -vv for DEBUG",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    verify = sub.add_parser("verify", help="emulate + verify a topology")
    verify.add_argument("topology", help="KNE-style topology file")
    verify.add_argument(
        "--backend", choices=("emulation", "model"), default="emulation"
    )
    verify.add_argument("--seed", type=int, default=0)
    verify.add_argument("--quiet-period", type=float, default=30.0)
    verify.add_argument(
        "--workers",
        type=int,
        default=None,
        help="precompute atom-graph verdicts across N worker processes",
    )
    verify.add_argument("--save", help="write the snapshot JSON here")
    verify.add_argument(
        "--trace", help="record an observability trace to this JSONL file"
    )
    verify.add_argument(
        "--delta-stats",
        action="store_true",
        help="print how the engine was derived (delta apply vs cold build)",
    )
    verify.set_defaults(func=_cmd_verify)

    diff = sub.add_parser("diff", help="differential reachability")
    diff.add_argument("reference")
    diff.add_argument("snapshot")
    diff.add_argument(
        "--delta-stats",
        action="store_true",
        help="print dirty atoms / reused indexes / fallback reason for "
        "the snapshot engine's incremental derivation",
    )
    diff.set_defaults(func=_cmd_diff)

    trace = sub.add_parser("trace", help="virtual traceroute")
    trace.add_argument("snapshot")
    trace.add_argument("node")
    trace.add_argument("destination")
    trace.set_defaults(func=_cmd_trace)

    routes = sub.add_parser("routes", help="show a snapshot's FIBs")
    routes.add_argument("snapshot")
    routes.add_argument("node", nargs="?", default=None)
    routes.set_defaults(func=_cmd_routes)

    demo = sub.add_parser("demo", help="run a built-in paper scenario")
    demo.add_argument("scenario", choices=("fig2", "fig3", "production"))
    demo.add_argument("--nodes", type=int, default=12)
    demo.add_argument("--routes", type=int, default=5000)
    demo.add_argument(
        "--trace", help="record an observability trace to this JSONL file"
    )
    demo.set_defaults(func=_cmd_demo)

    whatif = sub.add_parser(
        "whatif", help="fault-exploration campaign on a warm deployment"
    )
    whatif.add_argument(
        "topology",
        nargs="?",
        default=None,
        help="KNE-style topology file (default: a built-in corpus)",
    )
    whatif.add_argument(
        "--corpus",
        choices=("fig2", "fig3", "production"),
        default="fig2",
        help="built-in corpus when no topology file is given",
    )
    whatif.add_argument(
        "--nodes", type=int, default=8, help="production corpus size"
    )
    whatif.add_argument(
        "--routes", type=int, default=1000,
        help="production corpus routes per peer",
    )
    whatif.add_argument(
        "--mode",
        choices=("links", "nodes", "flaps", "k-links"),
        default="links",
        help="which fault sweep to run",
    )
    whatif.add_argument(
        "--k", type=int, default=2, help="combination size for k-links mode"
    )
    whatif.add_argument(
        "--flap-hold", type=float, default=30.0,
        help="seconds a flapped link stays down",
    )
    whatif.add_argument(
        "--limit", type=int, default=None,
        help="run only the first N scenarios",
    )
    whatif.add_argument("--seed", type=int, default=0)
    whatif.add_argument("--quiet-period", type=float, default=None)
    whatif.add_argument(
        "--fast", action="store_true",
        help="compressed protocol timers for a topology file",
    )
    whatif.add_argument(
        "--workers",
        type=int,
        default=None,
        help="shard scenarios across N worker processes "
        "(each pays its own cold bring-up)",
    )
    whatif.add_argument("--json", help="write the campaign report JSON here")
    whatif.add_argument(
        "--trace", help="record an observability trace to this JSONL file"
    )
    whatif.set_defaults(func=_cmd_whatif)

    chaos = sub.add_parser(
        "chaos",
        help="run a corpus under a fault plan and score verdict stability",
    )
    chaos.add_argument(
        "topology",
        nargs="?",
        default=None,
        help="KNE-style topology file (default: a built-in corpus)",
    )
    chaos.add_argument(
        "--corpus",
        choices=("fig2", "fig3", "production"),
        default="production",
        help="built-in corpus when no topology file is given",
    )
    chaos.add_argument(
        "--nodes", type=int, default=8, help="production corpus size"
    )
    chaos.add_argument(
        "--routes", type=int, default=1000,
        help="production corpus routes per peer",
    )
    chaos.add_argument(
        "--plan",
        choices=("acceptance", "sampled"),
        default="acceptance",
        help="acceptance: one crash + gNMI flakes; "
        "sampled: seed-drawn fault mix",
    )
    chaos.add_argument(
        "--plan-seed", type=int, default=0,
        help="seed for the sampled plan's fault draw",
    )
    chaos.add_argument(
        "--intensity", type=int, default=3,
        help="fault count for the sampled plan",
    )
    chaos.add_argument(
        "--no-crash", action="store_true",
        help="sampled plan: skip the pod crash",
    )
    chaos.add_argument(
        "--crash-at", type=float, default=900.0,
        help="simulated seconds before the pod crash fires",
    )
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument(
        "--seeds", default=None,
        help="score stability over an ensemble of faulted runs: a count "
        "(\"8\" = seeds 0..7) or a comma list (\"1,5,9\")",
    )
    chaos.add_argument("--quiet-period", type=float, default=None)
    chaos.add_argument(
        "--fast", action="store_true",
        help="compressed protocol timers for a topology file",
    )
    chaos.add_argument(
        "--temporal", action="store_true",
        help="record a checkpoint stream through the faulted run and "
        "score transient-state invariants",
    )
    chaos.add_argument("--json", help="write the chaos report JSON here")
    chaos.add_argument(
        "--trace", help="record an observability trace to this JSONL file"
    )
    chaos.set_defaults(func=_cmd_chaos)

    ensemble = sub.add_parser(
        "ensemble",
        help="seeded ensemble verification: holds-always / "
        "holds-sometimes / never over the set of converged states",
    )
    ensemble.add_argument(
        "topology",
        nargs="?",
        default=None,
        help="KNE-style topology file (default: a built-in corpus)",
    )
    ensemble.add_argument(
        "--corpus",
        choices=("fig2", "fig3", "production"),
        default="fig3",
        help="built-in corpus when no topology file is given",
    )
    ensemble.add_argument(
        "--nodes", type=int, default=8, help="production corpus size"
    )
    ensemble.add_argument(
        "--routes", type=int, default=1000,
        help="production corpus routes per peer",
    )
    ensemble.add_argument(
        "--seeds", default=None,
        help="a count (\"8\" = seeds 0..7) or a comma list (\"1,5,9\"); "
        "default: MFV_ENSEMBLE_SEEDS",
    )
    ensemble.add_argument(
        "--plans",
        choices=("none", "acceptance", "sampled"),
        default="none",
        help="cross the seed sweep with fault plans (the fault-free "
        "member is always included)",
    )
    ensemble.add_argument(
        "--plan-count", type=int, default=2,
        help="sampled plans to draw (seeds plan-seed, plan-seed+1, ...)",
    )
    ensemble.add_argument(
        "--plan-seed", type=int, default=0,
        help="seed for the first sampled plan's fault draw",
    )
    ensemble.add_argument(
        "--intensity", type=int, default=3,
        help="fault count per sampled plan",
    )
    ensemble.add_argument(
        "--crash-at", type=float, default=900.0,
        help="simulated seconds before a plan's pod crash fires",
    )
    ensemble.add_argument(
        "--temporal", action="store_true",
        help="record a checkpoint stream per member run and fold "
        "transient-state invariants into the verdicts",
    )
    ensemble.add_argument(
        "--waypoint", default=None,
        help="DEST_IP:VIA_NODE — add a waypoint invariant to the battery",
    )
    ensemble.add_argument(
        "--workers",
        type=int,
        default=None,
        help="shard the (seed x plan) matrix across N worker processes; "
        "default: MFV_ENSEMBLE_WORKERS",
    )
    ensemble.add_argument("--quiet-period", type=float, default=None)
    ensemble.add_argument(
        "--fast", action="store_true",
        help="compressed protocol timers for a topology file",
    )
    ensemble.add_argument("--json", help="write the ensemble report JSON here")
    ensemble.add_argument(
        "--trace", help="record an observability trace to this JSONL file"
    )
    ensemble.set_defaults(func=_cmd_ensemble)

    temporal = sub.add_parser(
        "temporal",
        help="transient-state verification: check invariants during "
        "convergence, not just after",
    )
    temporal.add_argument(
        "topology",
        nargs="?",
        default=None,
        help="KNE-style topology file (default: a built-in corpus)",
    )
    temporal.add_argument(
        "--corpus",
        choices=("fig2", "fig3", "production"),
        default="fig3",
        help="built-in corpus when no topology file is given",
    )
    temporal.add_argument(
        "--nodes", type=int, default=8, help="production corpus size"
    )
    temporal.add_argument(
        "--routes", type=int, default=1000,
        help="production corpus routes per peer",
    )
    temporal.add_argument(
        "--flap", default=None,
        help="link to flap, as an A-Z substring of the scenario name "
        "(default: the first link)",
    )
    temporal.add_argument(
        "--flap-hold", type=float, default=15.0,
        help="seconds the flapped link stays down",
    )
    temporal.add_argument(
        "--replay", default=None,
        help="evaluate a saved checkpoint stream instead of running live",
    )
    temporal.add_argument(
        "--save-stream", default=None,
        help="write the recorded checkpoint stream JSON here",
    )
    temporal.add_argument(
        "--brute-force", action="store_true",
        help="rebuild a cold engine per checkpoint instead of applying "
        "deltas (the oracle mode)",
    )
    temporal.add_argument(
        "--max-loop-s", type=float, default=0.0,
        help="tolerate transient loops shorter than this many sim-seconds",
    )
    temporal.add_argument(
        "--max-blackhole-s", type=float, default=0.0,
        help="tolerate transient blackholes shorter than this",
    )
    temporal.add_argument(
        "--max-churn", type=float, default=None,
        help="flag checkpoints installing more than N routes/sim-second",
    )
    temporal.add_argument(
        "--waypoint", default=None,
        help="DEST_IP:VIA_NODE — require traffic to DEST_IP to traverse "
        "VIA_NODE at every checkpoint",
    )
    temporal.add_argument("--seed", type=int, default=0)
    temporal.add_argument("--quiet-period", type=float, default=None)
    temporal.add_argument(
        "--fast", action="store_true",
        help="compressed protocol timers for a topology file",
    )
    temporal.add_argument("--json", help="write the temporal report JSON here")
    temporal.add_argument(
        "--trace", help="record an observability trace to this JSONL file"
    )
    temporal.set_defaults(func=_cmd_temporal)

    obs = sub.add_parser("obs", help="observability: timelines and traces")
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)

    timeline = obs_sub.add_parser(
        "timeline", help="run a scenario traced and print its timeline"
    )
    timeline.add_argument(
        "--scenario", choices=("fig2", "fig3", "whatif"), default="fig2"
    )
    timeline.add_argument(
        "--topology", help="trace a KNE-style topology file instead"
    )
    timeline.add_argument("--seed", type=int, default=0)
    timeline.add_argument("--quiet-period", type=float, default=5.0)
    timeline.add_argument(
        "--trace", help="also save the trace to this JSONL file"
    )
    timeline.set_defaults(func=_cmd_obs_timeline)

    summary = obs_sub.add_parser(
        "summary", help="summarize a saved JSONL trace"
    )
    summary.add_argument("trace_file", help="JSONL file from --trace")
    summary.set_defaults(func=_cmd_obs_summary)

    waterfall = obs_sub.add_parser(
        "waterfall", help="render one service job's lifecycle from a trace"
    )
    waterfall.add_argument("trace_file", help="JSONL file from --trace")
    waterfall.add_argument("job_id", type=int, help="service job id")
    waterfall.set_defaults(func=_cmd_obs_waterfall)

    metrics = obs_sub.add_parser(
        "metrics", help="render the metrics plane from a saved trace"
    )
    metrics.add_argument(
        "trace_file", help="JSONL trace or metrics export file"
    )
    metrics.add_argument(
        "--format",
        choices=("prometheus", "records"),
        default=None,
        help="output shape (default: MFV_METRICS_FORMAT or prometheus)",
    )
    metrics.set_defaults(func=_cmd_obs_metrics)

    serve = sub.add_parser(
        "serve", help="continuous verification service (JSON-lines on stdin)"
    )
    serve.add_argument(
        "snapshots", nargs="*", help="snapshot JSON files to preload"
    )
    serve.add_argument(
        "--workers", type=int, default=None,
        help="worker threads (default: MFV_SERVICE_WORKERS or 2)",
    )
    serve.add_argument(
        "--queue-depth", type=int, default=None,
        help="admission-control watermark "
        "(default: MFV_SERVICE_QUEUE_DEPTH or 64)",
    )
    serve.add_argument(
        "--store", type=int, default=None,
        help="resident snapshot capacity (default: MFV_SERVICE_STORE or 8)",
    )
    serve.add_argument(
        "--trace", help="record an observability trace to this JSONL file"
    )
    serve.add_argument(
        "--journal", default=None, metavar="DIR",
        help="durable job journal directory "
        "(default: MFV_JOURNAL_DIR; required by --recover)",
    )
    serve.add_argument(
        "--recover", action="store_true",
        help="replay the journal before serving: re-register snapshots, "
        "requeue unsettled jobs, dead-letter past the redelivery limit",
    )
    serve.add_argument(
        "--worker-mode", choices=("thread", "process"), default=None,
        help="worker isolation (default: MFV_SERVICE_WORKER_MODE or "
        "thread); process workers are supervised and crash-isolated",
    )
    serve.set_defaults(func=_cmd_serve)

    submit = sub.add_parser(
        "submit", help="run one question through the verification service"
    )
    submit.add_argument("snapshot", help="snapshot JSON file")
    submit.add_argument("question", help="pybf question name")
    submit.add_argument(
        "--param", action="append", metavar="KEY=VALUE",
        help="question parameter (repeatable)",
    )
    submit.add_argument(
        "--reference", help="reference snapshot for differential questions"
    )
    submit.add_argument(
        "--priority", default=None,
        help="interactive | differential | campaign",
    )
    submit.add_argument("--timeout", type=float, default=None)
    submit.add_argument("--workers", type=int, default=None)
    submit.set_defaults(func=_cmd_submit)

    return parser


def _configure_logging(verbosity: int) -> None:
    level = {0: logging.WARNING, 1: logging.INFO}.get(verbosity, logging.DEBUG)
    logging.basicConfig(
        level=level, format="%(levelname)s %(name)s: %(message)s"
    )


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    _configure_logging(args.verbose)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
