"""Dataplane model built from extracted AFT snapshots.

This is the verification stage's view of the network: pure forwarding
state. Adjacency is *derived from the extracted interface state* (two
enabled interfaces on the same subnet form an L3 edge), never from the
emulation's topology file — keeping the verification stage honest about
what was actually extracted.
"""

from repro.dataplane.model import Dataplane, DeviceForwarding, L3Edge
from repro.dataplane.delta import DataplaneDelta, DeviceDelta
from repro.dataplane.forwarding import (
    Disposition,
    ForwardingWalk,
    Hop,
    Trace,
    dst_atoms,
)

__all__ = [
    "Dataplane",
    "DataplaneDelta",
    "DeviceDelta",
    "DeviceForwarding",
    "Disposition",
    "ForwardingWalk",
    "Hop",
    "L3Edge",
    "Trace",
    "dst_atoms",
]
