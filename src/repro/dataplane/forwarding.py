"""Symbolic forwarding over the dataplane.

The engine's exhaustiveness comes from *destination atoms*: the
destination address space is partitioned at every prefix boundary that
appears in any device's FIB (plus interface addresses), so within one
atom every LPM decision in the network is constant. Walking one
representative address per atom is therefore an exact analysis of every
possible destination — the same guarantee Batfish's symbolic engine
provides, realized with interval arithmetic instead of BDDs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.dataplane.model import Dataplane, ForwardingEntry
from repro.net.addr import Prefix, format_ipv4
from repro.net.headerspace import HeaderSpace
from repro.net.intervals import IntervalSet, atoms
from repro.obs import bus


class Disposition(enum.Enum):
    """Where a packet ends up (mirrors Batfish's flow dispositions)."""

    ACCEPTED = "accepted"
    DELIVERED_TO_SUBNET = "delivered-to-subnet"
    EXITS_NETWORK = "exits-network"
    NO_ROUTE = "no-route"
    NULL_ROUTED = "null-routed"
    LOOP = "loop"
    DENIED_IN = "denied-in"
    DENIED_OUT = "denied-out"
    # The destination belongs to a node whose forwarding state could
    # not be extracted (a partial snapshot). Explicitly *not* NO_ROUTE:
    # the network may well deliver, we just cannot prove it.
    UNKNOWN_DEGRADED = "unknown-degraded"

    @property
    def is_success(self) -> bool:
        return self in (
            Disposition.ACCEPTED,
            Disposition.DELIVERED_TO_SUBNET,
            Disposition.EXITS_NETWORK,
        )


@dataclass(frozen=True)
class Hop:
    """One step of a trace: device, matched prefix, out interface."""
    device: str
    matched: Optional[Prefix]
    out_interface: Optional[str]

    def __str__(self) -> str:
        if self.out_interface is None:
            return self.device
        return f"{self.device}[{self.matched} -> {self.out_interface}]"


@dataclass(frozen=True)
class Trace:
    """One forwarding path with its final disposition.

    ``space`` is the exact header-space slice that follows this path —
    relevant once ACLs split traffic on fields other than the
    destination address. None means "the whole queried space".
    """

    disposition: Disposition
    hops: tuple[Hop, ...]
    space: Optional[HeaderSpace] = None

    def sample_packet(self):
        if self.space is not None:
            return self.space.sample()
        return None

    def __str__(self) -> str:
        path = " >> ".join(str(h) for h in self.hops)
        return f"{path} :: {self.disposition.value}"


@dataclass
class WalkResult:
    """All ECMP/ACL-split paths for one (ingress, destination) pair."""

    ingress: str
    destination: int
    traces: tuple[Trace, ...]

    @property
    def dispositions(self) -> frozenset[Disposition]:
        return frozenset(t.disposition for t in self.traces)

    def spaces_by_disposition(self) -> dict[Disposition, HeaderSpace]:
        """Exact header space reaching each disposition.

        Traces without a tracked space count as the full space (no ACL
        ever split them).
        """
        out: dict[Disposition, HeaderSpace] = {}
        for trace in self.traces:
            space = trace.space if trace.space is not None else HeaderSpace.full()
            current = out.get(trace.disposition)
            out[trace.disposition] = (
                space if current is None else current | space
            )
        return out

    def behaviour_equal(self, other: "WalkResult") -> bool:
        """Same dispositions over the same header-space slices."""
        mine = self.spaces_by_disposition()
        theirs = other.spaces_by_disposition()
        if set(mine) != set(theirs):
            return False
        return all(mine[d].equivalent(theirs[d]) for d in mine)

    @property
    def success(self) -> bool:
        """True when every ECMP branch succeeds."""
        return all(t.disposition.is_success for t in self.traces)

    def __str__(self) -> str:
        return (
            f"{self.ingress} -> {format_ipv4(self.destination)}: "
            + "; ".join(str(t) for t in self.traces)
        )


_MAX_TRACES = 16
_MAX_DEPTH = 64


class ForwardingWalk:
    """Exhaustive per-destination forwarding analysis."""

    def __init__(self, dataplane: Dataplane) -> None:
        self.dataplane = dataplane

    def walk(
        self,
        ingress: str,
        destination: int,
        space: Optional[HeaderSpace] = None,
    ) -> WalkResult:
        """Follow all ECMP branches of ``destination`` from ``ingress``.

        ``space`` restricts the analysed header space (destination field
        implicitly constant: callers walk one destination atom at a
        time). ACLs along the path split the space exactly: denied
        slices terminate with DENIED_IN / DENIED_OUT, permitted slices
        continue.
        """
        if bus.ACTIVE.enabled:
            bus.ACTIVE.count("verify.scalar_walks")
        traces: list[Trace] = []
        if space is None:
            # Constrain the destination field to the queried address so
            # sampled witness packets are actual members of the query.
            space = HeaderSpace.dst_set(IntervalSet.of(destination))
        if destination in self.dataplane.degraded_owned:
            # The destination's owner could not be extracted: answer
            # UNKNOWN_DEGRADED instead of tracing toward a hole in the
            # snapshot and concluding NO_ROUTE.
            return WalkResult(
                ingress=ingress,
                destination=destination,
                traces=(
                    Trace(
                        Disposition.UNKNOWN_DEGRADED,
                        (Hop(ingress, None, None),),
                        space=space,
                    ),
                ),
            )
        self._explore(ingress, destination, space, None, (), frozenset(), traces)
        return WalkResult(
            ingress=ingress, destination=destination, traces=tuple(traces)
        )

    def _explore(
        self,
        device_name: str,
        dst: int,
        space: HeaderSpace,
        arrival_interface: Optional[str],
        hops: tuple[Hop, ...],
        visited: frozenset[str],
        traces: list[Trace],
    ) -> None:
        if len(traces) >= _MAX_TRACES or len(hops) >= _MAX_DEPTH:
            return
        device = self.dataplane.devices[device_name]
        # Ingress ACL on the interface we arrived through.
        if arrival_interface is not None:
            acl = device.ingress_acl(arrival_interface)
            if acl is not None:
                permitted = acl.permit_space()
                denied = space - permitted
                if not denied.is_empty():
                    traces.append(
                        Trace(
                            Disposition.DENIED_IN,
                            hops + (Hop(device_name, None, None),),
                            space=denied,
                        )
                    )
                space = space & permitted
                if space.is_empty():
                    return
        if device_name in visited:
            traces.append(Trace(Disposition.LOOP, hops, space=space))
            return
        entry = device.lookup(dst)
        if entry is None:
            traces.append(
                Trace(
                    Disposition.NO_ROUTE,
                    hops + (Hop(device_name, None, None),),
                    space=space,
                )
            )
            return
        if entry.entry_type == "receive":
            traces.append(
                Trace(
                    Disposition.ACCEPTED,
                    hops + (Hop(device_name, entry.prefix, None),),
                    space=space,
                )
            )
            return
        if entry.entry_type == "discard":
            traces.append(
                Trace(
                    Disposition.NULL_ROUTED,
                    hops + (Hop(device_name, entry.prefix, None),),
                    space=space,
                )
            )
            return
        next_visited = visited | {device_name}
        for hop in entry.hops:
            if len(traces) >= _MAX_TRACES:
                return
            here = hops + (Hop(device_name, entry.prefix, hop.interface),)
            out_space = space
            acl = device.egress_acl(hop.interface)
            if acl is not None:
                permitted = acl.permit_space()
                denied = out_space - permitted
                if not denied.is_empty():
                    traces.append(
                        Trace(Disposition.DENIED_OUT, here, space=denied)
                    )
                out_space = out_space & permitted
                if out_space.is_empty():
                    continue
            peer = self.dataplane.neighbor_via(
                device_name, hop.interface, hop.gateway, dst
            )
            if peer is not None:
                self._explore(
                    peer[0], dst, out_space, peer[1], here, next_visited, traces
                )
                continue
            # No known device answers on that subnet.
            if hop.gateway is None or hop.gateway == dst:
                # Directly attached delivery to a host we don't model.
                subnet_known = (
                    (device_name, hop.interface) in self.dataplane.adjacency
                    or hop.interface in device.interface_addresses
                )
                disposition = (
                    Disposition.DELIVERED_TO_SUBNET
                    if subnet_known
                    else Disposition.EXITS_NETWORK
                )
                traces.append(Trace(disposition, here, space=out_space))
            else:
                traces.append(
                    Trace(Disposition.EXITS_NETWORK, here, space=out_space)
                )


def dst_atoms(*dataplanes: Dataplane) -> list[IntervalSet]:
    """Destination-space partition refined across all given dataplanes.

    Every FIB prefix and interface address in any of the dataplanes
    contributes boundaries, so within one atom every device in *every*
    snapshot makes the same LPM decision — which is what differential
    analysis needs.
    """
    prefixes: set[Prefix] = set()
    for dataplane in dataplanes:
        prefixes.update(dataplane.all_prefixes())
    sets = [IntervalSet.from_prefix(p) for p in prefixes]
    return atoms(sets)
