"""Structural diff between two dataplane snapshots.

A churning deployment — one what-if scenario, one chaos recovery, one
re-extraction — typically changes a handful of FIB entries on a handful
of devices while everything else is byte-identical. This module captures
exactly that structure: :class:`DataplaneDelta` diffs two
:class:`~repro.dataplane.model.Dataplane` objects device by device,
skipping unchanged devices in O(1) via their cached content signatures,
and reports the added/removed/changed FIB entries (keyed by prefix) plus
every destination-space boundary the change moves. The verification
engine consumes this to derive a new engine incrementally
(:meth:`~repro.verify.engine.AtomGraphEngine.apply_delta`) instead of
rebuilding from scratch.

The delta is deliberately conservative about what it claims to cover:

* a device-set change (node added/removed, including single-node
  failures, which drop the node from extraction) is reported but not
  diffed — the consumer must fall back to a full build;
* an ACL change (rules or bindings) is likewise fallback-only: ACLs
  move engine *taint* boundaries, which a per-atom patch cannot express.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.dataplane.model import Dataplane, DeviceForwarding
from repro.net.addr import Prefix


@dataclass(frozen=True)
class DeviceDelta:
    """One touched device's FIB difference, keyed by prefix.

    ``changed`` holds prefixes present on both sides whose entry content
    (type or resolved hops) differs. ``links_changed`` flags interface
    addressing or subnet-adjacency differences — for those, entry
    equality no longer implies behaviour equality, so the engine must
    compare resolved decision structs instead of raw entries.
    """

    device: str
    added: tuple[Prefix, ...]
    removed: tuple[Prefix, ...]
    changed: tuple[Prefix, ...]
    links_changed: bool
    #: The interfaces whose addressing or subnet adjacency actually
    #: moved (empty unless ``links_changed``). A hop through any *other*
    #: interface still resolves identically on both sides, which lets
    #: the engine skip most struct comparisons on link-touched devices.
    changed_interfaces: tuple[str, ...] = ()

    @property
    def fib_prefixes(self) -> tuple[Prefix, ...]:
        return self.added + self.removed + self.changed

    def __str__(self) -> str:
        bits = [
            f"+{len(self.added)}",
            f"-{len(self.removed)}",
            f"~{len(self.changed)}",
        ]
        if self.links_changed:
            bits.append("links")
        return f"{self.device}({','.join(bits)})"


def _prefix_key(prefix: Prefix) -> tuple[int, int]:
    return (prefix.network, prefix.length)


def _per_device_adjacency(
    dataplane: Dataplane,
) -> dict[str, dict[str, tuple]]:
    """Each device's view of its subnet neighbors, comparable across
    dataplanes (plain sorted tuples, no object identity)."""
    views: dict[str, dict[str, tuple]] = {}
    for (device, iface), neighbors in dataplane.adjacency.items():
        views.setdefault(device, {})[iface] = tuple(sorted(neighbors))
    return views


def _changed_interfaces(
    base: DeviceForwarding,
    target: DeviceForwarding,
    base_view: dict[str, tuple],
    target_view: dict[str, tuple],
) -> tuple[str, ...]:
    names = (
        set(base_view)
        | set(target_view)
        | set(base.interface_addresses)
        | set(target.interface_addresses)
    )
    return tuple(
        sorted(
            iface
            for iface in names
            if base_view.get(iface) != target_view.get(iface)
            or base.interface_addresses.get(iface)
            != target.interface_addresses.get(iface)
        )
    )


def _diff_device(
    base: DeviceForwarding,
    target: DeviceForwarding,
    changed_interfaces: tuple[str, ...],
) -> DeviceDelta:
    # Two-pointer merge over both FIBs in prefix order: one linear pass,
    # no intermediate dicts or set algebra — this runs on every touched
    # device of every delta, against full-table tries. The sorted lists
    # are cached on the devices, so each trie is walked once ever.
    base_items = base.sorted_entries()
    target_items = target.sorted_entries()
    added: list[Prefix] = []
    removed: list[Prefix] = []
    changed: list[Prefix] = []
    i = j = 0
    while i < len(base_items) and j < len(target_items):
        base_prefix, base_entry = base_items[i]
        target_prefix, target_entry = target_items[j]
        base_key = _prefix_key(base_prefix)
        target_key = _prefix_key(target_prefix)
        if base_key == target_key:
            if base_entry != target_entry:
                changed.append(base_prefix)
            i += 1
            j += 1
        elif base_key < target_key:
            removed.append(base_prefix)
            i += 1
        else:
            added.append(target_prefix)
            j += 1
    removed.extend(prefix for prefix, _ in base_items[i:])
    added.extend(prefix for prefix, _ in target_items[j:])
    return DeviceDelta(
        device=base.name,
        added=tuple(added),
        removed=tuple(removed),
        changed=tuple(changed),
        links_changed=bool(changed_interfaces),
        changed_interfaces=changed_interfaces,
    )


class DataplaneDelta:
    """What changed between ``base`` and ``target``, device by device.

    Devices whose cached :meth:`~DeviceForwarding.content_signature`
    and adjacency view both match are skipped in O(1) — the common case
    after a localized perturbation, where the IGP only reprograms the
    devices near the change. The adjacency comparison matters because a
    device's *own* content can be untouched while a neighbor's interface
    vanished from its subnet, changing how its next hops resolve.
    """

    def __init__(self, base: Dataplane, target: Dataplane) -> None:
        self.base = base
        self.target = target
        base_names = set(base.devices)
        target_names = set(target.devices)
        self.added_devices: tuple[str, ...] = tuple(
            sorted(target_names - base_names)
        )
        self.removed_devices: tuple[str, ...] = tuple(
            sorted(base_names - target_names)
        )
        #: Degraded-ownership flips (either direction): each becomes a
        #: /32 boundary and an unconditionally dirty atom, because the
        #: UNKNOWN_DEGRADED verdict bypasses decision structs entirely.
        self.degraded_changed_addresses: tuple[int, ...] = tuple(
            sorted(set(base.degraded_owned) ^ set(target.degraded_owned))
        )
        self.acl_changed = False
        self.device_deltas: dict[str, DeviceDelta] = {}
        if self.added_devices or self.removed_devices:
            # Device-set changes invalidate the shared node universe the
            # engine's graphs are built over; don't bother diffing FIBs.
            return
        base_adjacency = _per_device_adjacency(base)
        target_adjacency = _per_device_adjacency(target)
        for name in sorted(base_names):
            base_device = base.devices[name]
            target_device = target.devices[name]
            base_view = base_adjacency.get(name, {})
            target_view = target_adjacency.get(name, {})
            changed_interfaces: tuple[str, ...] = ()
            if base_view != target_view or (
                base_device.interface_addresses
                != target_device.interface_addresses
            ):
                changed_interfaces = _changed_interfaces(
                    base_device, target_device, base_view, target_view
                )
            if (
                not changed_interfaces
                and base_device.content_signature()
                == target_device.content_signature()
            ):
                continue
            if base_device.acl_signature() != target_device.acl_signature():
                self.acl_changed = True
            self.device_deltas[name] = _diff_device(
                base_device, target_device, changed_interfaces
            )

    @classmethod
    def compose(
        cls, first: "DataplaneDelta", second: "DataplaneDelta"
    ) -> "DataplaneDelta":
        """Fuse A→B and B→C into a single A→C delta.

        The composed delta only examines devices touched by either hop —
        a device untouched in both is identical in A and C, so the full
        O(devices) signature scan of ``__init__`` is skipped. Touched
        devices are re-diffed directly A-vs-C (never by merging prefix
        lists), so a change the second hop reverts nets out to nothing:
        composition is exact, not an over-approximation. The checkpoint
        recorder uses this to merge adjacent checkpoints when a
        convergence storm exceeds ``MFV_TEMPORAL_MAX_CHECKPOINTS``.

        The two deltas must chain: ``second.base`` is (or forwards
        identically to) ``first.target``. Device-set churn in either hop
        breaks the per-device pairing, so that case falls back to a
        plain re-diff of the endpoints, which is always correct.
        """
        if second.base is not first.target and (
            second.base.fib_fingerprint() != first.target.fib_fingerprint()
        ):
            raise ValueError(
                "compose: deltas do not chain (first.target != second.base)"
            )
        base, target = first.base, second.target
        if (
            first.added_devices
            or first.removed_devices
            or second.added_devices
            or second.removed_devices
        ):
            return cls(base, target)
        composed = cls.__new__(cls)
        composed.base = base
        composed.target = target
        composed.added_devices = ()
        composed.removed_devices = ()
        composed.degraded_changed_addresses = tuple(
            sorted(set(base.degraded_owned) ^ set(target.degraded_owned))
        )
        composed.acl_changed = False
        composed.device_deltas = {}
        candidates = set(first.device_deltas) | set(second.device_deltas)
        base_adjacency = _per_device_adjacency(base)
        target_adjacency = _per_device_adjacency(target)
        for name in sorted(candidates):
            base_device = base.devices[name]
            target_device = target.devices[name]
            base_view = base_adjacency.get(name, {})
            target_view = target_adjacency.get(name, {})
            changed_interfaces: tuple[str, ...] = ()
            if base_view != target_view or (
                base_device.interface_addresses
                != target_device.interface_addresses
            ):
                changed_interfaces = _changed_interfaces(
                    base_device, target_device, base_view, target_view
                )
            if (
                not changed_interfaces
                and base_device.content_signature()
                == target_device.content_signature()
            ):
                continue
            if base_device.acl_signature() != target_device.acl_signature():
                composed.acl_changed = True
            composed.device_deltas[name] = _diff_device(
                base_device, target_device, changed_interfaces
            )
        return composed

    # -- queries -------------------------------------------------------------

    @property
    def touched_devices(self) -> tuple[str, ...]:
        return tuple(self.device_deltas)

    @property
    def is_empty(self) -> bool:
        return not (
            self.device_deltas
            or self.added_devices
            or self.removed_devices
            or self.degraded_changed_addresses
        )

    def fallback_reason(self) -> Optional[str]:
        """Why this delta cannot be applied incrementally (None = it can).

        Threshold-based reasons (dirty-atom fraction, touched-device
        fraction) are the consumer's call; only structural
        disqualifiers live here.
        """
        if self.added_devices or self.removed_devices:
            return "device-set"
        if self.acl_changed:
            return "acl-change"
        return None

    def boundary_prefixes(self) -> set[Prefix]:
        """Every prefix whose boundaries the change may move.

        Refining the base engine's atom partition at these boundaries
        guarantees each derived atom has one constant decision vector in
        *both* snapshots — including boundaries of *removed* prefixes,
        which are harmless over-refinement (any refinement of a valid
        partition stays valid).
        """
        out: set[Prefix] = set()
        for device_delta in self.device_deltas.values():
            out.update(device_delta.fib_prefixes)
            if device_delta.links_changed:
                changed = set(device_delta.changed_interfaces)
                for dataplane in (self.base, self.target):
                    device = dataplane.devices[device_delta.device]
                    for iface, (
                        address,
                        length,
                    ) in device.interface_addresses.items():
                        if iface not in changed:
                            continue
                        out.add(Prefix.containing(address, 32))
                        out.add(Prefix.containing(address, length))
        for address in self.degraded_changed_addresses:
            out.add(Prefix.containing(address, 32))
        return out

    def summary(self) -> str:
        if self.is_empty:
            return "delta: empty"
        if self.added_devices or self.removed_devices:
            return (
                f"delta: device set changed "
                f"(+{len(self.added_devices)}/-{len(self.removed_devices)})"
            )
        pieces = [str(d) for d in self.device_deltas.values()]
        return (
            f"delta: {len(self.device_deltas)}/{len(self.base.devices)} "
            f"devices touched [{' '.join(pieces)}]"
        )

    def __repr__(self) -> str:
        return f"DataplaneDelta({self.summary()!r})"
