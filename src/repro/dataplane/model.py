"""Network dataplane assembled from per-device AFT snapshots."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from repro.gnmi.aft import AftSnapshot
from repro.net.addr import Prefix, parse_ipv4
from repro.net.trie import PrefixTrie


@dataclass(frozen=True)
class ResolvedHop:
    """One forwarding alternative of a FIB entry."""

    interface: str
    gateway: Optional[int]  # next-hop IP (None = directly attached)


@dataclass(frozen=True)
class ForwardingEntry:
    """One device FIB entry as the verifier sees it."""
    prefix: Prefix
    entry_type: str  # "forward" | "receive" | "discard"
    hops: tuple[ResolvedHop, ...] = ()


@dataclass(frozen=True)
class L3Edge:
    """A derived layer-3 adjacency."""

    device: str
    interface: str
    peer_device: str
    peer_interface: str

    def __str__(self) -> str:
        return (
            f"{self.device}[{self.interface}] <=> "
            f"{self.peer_device}[{self.peer_interface}]"
        )


class DeviceForwarding:
    """One device's forwarding table plus interface addressing."""

    def __init__(self, snapshot: AftSnapshot) -> None:
        from repro.device.acl import Acl

        self.name = snapshot.device
        self.trie: PrefixTrie[ForwardingEntry] = PrefixTrie()
        self.interface_addresses: dict[str, tuple[int, int]] = {}
        self.local_addresses: set[int] = set()
        self.acls: dict[str, Acl] = {
            name: Acl(name=name, rules=list(rules))
            for name, rules in snapshot.acls.items()
        }
        # interface -> (ingress ACL, egress ACL), names resolved lazily.
        self.interface_acls: dict[str, tuple[Optional[str], Optional[str]]] = {
            iface.name: (iface.acl_in, iface.acl_out)
            for iface in snapshot.interfaces
            if iface.acl_in or iface.acl_out
        }
        for iface in snapshot.interfaces:
            if iface.ipv4_address is not None and iface.enabled:
                address = parse_ipv4(iface.ipv4_address)
                assert iface.prefix_length is not None
                self.interface_addresses[iface.name] = (
                    address,
                    iface.prefix_length,
                )
                self.local_addresses.add(address)
        for prefix, entry in snapshot.forward_entries():
            hops: tuple[ResolvedHop, ...] = ()
            if entry.entry_type == "forward" and entry.next_hop_group is not None:
                group = snapshot.next_hop_groups[entry.next_hop_group]
                hops = tuple(
                    ResolvedHop(
                        interface=snapshot.next_hops[i].interface,
                        gateway=(
                            parse_ipv4(snapshot.next_hops[i].ip_address)
                            if snapshot.next_hops[i].ip_address is not None
                            else None
                        ),
                    )
                    for i in group.next_hop_indices
                )
            self.trie.insert(
                prefix,
                ForwardingEntry(
                    prefix=prefix, entry_type=entry.entry_type, hops=hops
                ),
            )

    def lookup(self, address: int) -> Optional[ForwardingEntry]:
        match = self.trie.longest_match(address)
        return match[1] if match else None

    def connected_subnets(self) -> Iterator[tuple[str, Prefix]]:
        for name, (address, length) in self.interface_addresses.items():
            if length < 32:
                yield name, Prefix.containing(address, length)

    def ingress_acl(self, interface: str):
        names = self.interface_acls.get(interface)
        if names is None or names[0] is None:
            return None
        return self.acls.get(names[0])

    def egress_acl(self, interface: str):
        names = self.interface_acls.get(interface)
        if names is None or names[1] is None:
            return None
        return self.acls.get(names[1])

    def prefixes(self) -> Iterator[Prefix]:
        yield from self.trie.keys()

    def __len__(self) -> int:
        return len(self.trie)


class Dataplane:
    """The whole network's forwarding state, ready for verification."""

    def __init__(self, snapshots: dict[str, AftSnapshot]) -> None:
        self.devices: dict[str, DeviceForwarding] = {
            name: DeviceForwarding(snap) for name, snap in snapshots.items()
        }
        self.address_owner: dict[int, str] = {}
        for name, device in self.devices.items():
            for address in device.local_addresses:
                self.address_owner[address] = name
        self.edges: list[L3Edge] = []
        # (device, interface) -> neighbors on the shared subnet
        self.adjacency: dict[tuple[str, str], list[tuple[str, str, int]]] = {}
        self._derive_edges()

    @classmethod
    def from_afts(cls, snapshots: dict[str, AftSnapshot]) -> "Dataplane":
        return cls(snapshots)

    @classmethod
    def from_dicts(cls, raw: dict[str, dict]) -> "Dataplane":
        return cls(
            {name: AftSnapshot.from_dict(data) for name, data in raw.items()}
        )

    def _derive_edges(self) -> None:
        """Infer L3 edges: enabled interfaces sharing a subnet."""
        members: dict[Prefix, list[tuple[str, str, int]]] = {}
        for name, device in self.devices.items():
            for iface, subnet in device.connected_subnets():
                address = device.interface_addresses[iface][0]
                members.setdefault(subnet, []).append((name, iface, address))
        for subnet, endpoints in members.items():
            del subnet
            for device, iface, _addr in endpoints:
                neighbors = [
                    (d, i, a)
                    for d, i, a in endpoints
                    if (d, i) != (device, iface)
                ]
                if neighbors:
                    self.adjacency[(device, iface)] = neighbors
            if len(endpoints) >= 2:
                seen: set[frozenset] = set()
                for a_dev, a_if, _a in endpoints:
                    for z_dev, z_if, _z in endpoints:
                        key = frozenset(((a_dev, a_if), (z_dev, z_if)))
                        if (a_dev, a_if) >= (z_dev, z_if) or key in seen:
                            continue
                        seen.add(key)
                        self.edges.append(
                            L3Edge(a_dev, a_if, z_dev, z_if)
                        )

    # -- queries -------------------------------------------------------------

    def device(self, name: str) -> DeviceForwarding:
        return self.devices[name]

    def node_names(self) -> list[str]:
        return sorted(self.devices)

    def neighbor_via(
        self, device: str, interface: str, gateway: Optional[int], dst: int
    ) -> Optional[tuple[str, str]]:
        """Where does traffic leaving (device, interface) arrive?

        Picks the subnet neighbor owning the gateway address (or, for
        directly attached traffic, the destination itself).
        """
        neighbors = self.adjacency.get((device, interface))
        if not neighbors:
            return None
        target = gateway if gateway is not None else dst
        for peer_device, peer_iface, peer_addr in neighbors:
            if peer_addr == target:
                return peer_device, peer_iface
        return None

    def all_prefixes(self) -> set[Prefix]:
        out: set[Prefix] = set()
        for device in self.devices.values():
            out.update(device.prefixes())
            for name, (address, length) in device.interface_addresses.items():
                del name
                out.add(Prefix.containing(address, 32))
                out.add(Prefix.containing(address, length))
            # ACL destination matches partition the dst space too: an
            # atom must not straddle an ACL dst boundary.
            for acl in device.acls.values():
                for rule in acl.rules:
                    if rule.dst is not None:
                        out.add(rule.dst)
        return out

    def __len__(self) -> int:
        return len(self.devices)

    def __repr__(self) -> str:
        return (
            f"Dataplane(devices={len(self.devices)}, edges={len(self.edges)})"
        )
