"""Network dataplane assembled from per-device AFT snapshots."""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.gnmi.aft import AftSnapshot
from repro.net.addr import Prefix, parse_ipv4
from repro.net.trie import PrefixTrie
from repro.obs import bus


@dataclass(frozen=True)
class ResolvedHop:
    """One forwarding alternative of a FIB entry."""

    interface: str
    gateway: Optional[int]  # next-hop IP (None = directly attached)


@dataclass(frozen=True)
class ForwardingEntry:
    """One device FIB entry as the verifier sees it."""
    prefix: Prefix
    entry_type: str  # "forward" | "receive" | "discard"
    hops: tuple[ResolvedHop, ...] = ()


@dataclass(frozen=True)
class L3Edge:
    """A derived layer-3 adjacency."""

    device: str
    interface: str
    peer_device: str
    peer_interface: str

    def __str__(self) -> str:
        return (
            f"{self.device}[{self.interface}] <=> "
            f"{self.peer_device}[{self.peer_interface}]"
        )


class DeviceForwarding:
    """One device's forwarding table plus interface addressing."""

    def __init__(self, snapshot: AftSnapshot) -> None:
        from repro.device.acl import Acl

        self.name = snapshot.device
        self.trie: PrefixTrie[ForwardingEntry] = PrefixTrie()
        self._compiled: Optional[CompiledLpmIndex] = None
        self._signature: Optional[int] = None
        self._sorted_entries: Optional[
            list[tuple[Prefix, ForwardingEntry]]
        ] = None
        self.interface_addresses: dict[str, tuple[int, int]] = {}
        self.local_addresses: set[int] = set()
        self.acls: dict[str, Acl] = {
            name: Acl(name=name, rules=list(rules))
            for name, rules in snapshot.acls.items()
        }
        # interface -> (ingress ACL, egress ACL), names resolved lazily.
        self.interface_acls: dict[str, tuple[Optional[str], Optional[str]]] = {
            iface.name: (iface.acl_in, iface.acl_out)
            for iface in snapshot.interfaces
            if iface.acl_in or iface.acl_out
        }
        for iface in snapshot.interfaces:
            if iface.ipv4_address is not None and iface.enabled:
                address = parse_ipv4(iface.ipv4_address)
                assert iface.prefix_length is not None
                self.interface_addresses[iface.name] = (
                    address,
                    iface.prefix_length,
                )
                self.local_addresses.add(address)
        for prefix, entry in snapshot.forward_entries():
            hops: tuple[ResolvedHop, ...] = ()
            if entry.entry_type == "forward" and entry.next_hop_group is not None:
                group = snapshot.next_hop_groups[entry.next_hop_group]
                hops = tuple(
                    ResolvedHop(
                        interface=snapshot.next_hops[i].interface,
                        gateway=(
                            parse_ipv4(snapshot.next_hops[i].ip_address)
                            if snapshot.next_hops[i].ip_address is not None
                            else None
                        ),
                    )
                    for i in group.next_hop_indices
                )
            self.trie.insert(
                prefix,
                ForwardingEntry(
                    prefix=prefix, entry_type=entry.entry_type, hops=hops
                ),
            )

    def lookup(self, address: int) -> Optional[ForwardingEntry]:
        if bus.ACTIVE.enabled:
            bus.ACTIVE.count("verify.lpm_lookups")
        match = self.trie.longest_match(address)
        return match[1] if match else None

    def compiled_index(self) -> "CompiledLpmIndex":
        """The flattened FIB: every possible LPM decision, precomputed.

        Built once per device (lazily) and reused across every
        destination atom by the atom-graph engine; a probe is one
        binary search instead of a 32-bit trie walk.
        """
        if self._compiled is None:
            self._compiled = CompiledLpmIndex(self.trie.lpm_intervals())
        return self._compiled

    def sorted_entries(self) -> list[tuple[Prefix, ForwardingEntry]]:
        """Every FIB entry in (network, length) order, walked once.

        The trie walk is the expensive part of both the content
        signature and a delta diff; caching the flattened list means a
        baseline diffed against many churned snapshots walks each trie
        exactly once (the device is immutable after construction).
        """
        if self._sorted_entries is None:
            self._sorted_entries = sorted(
                self.trie.items(),
                key=lambda kv: (kv[0].network, kv[0].length),
            )
        return self._sorted_entries

    def content_signature(self) -> int:
        """Content hash of everything this device's forwarding depends on.

        Equal signatures mean identical FIB entries, interface
        addressing, and ACL bindings — so a delta diff can skip the
        device in O(1), and the dataplane fingerprint is just the hash
        of all device signatures. Computed once (the device is immutable
        after construction).
        """
        if self._signature is None:
            self._signature = hash(
                (
                    self.name,
                    tuple(
                        (prefix, entry.entry_type, entry.hops)
                        for prefix, entry in self.sorted_entries()
                    ),
                    tuple(sorted(self.interface_addresses.items())),
                    self.acl_signature(),
                )
            )
        return self._signature

    def acl_signature(self) -> tuple:
        """Hashable view of the device's ACL bindings and rule content.

        A delta derivation is only valid while this stays constant: ACL
        changes move engine taint boundaries, which a dirty-atom patch
        cannot express (see ``AtomGraphEngine.apply_delta``).
        """
        return (
            tuple(sorted(self.interface_acls.items())),
            tuple(
                (acl_name, tuple(acl.rules))
                for acl_name, acl in sorted(self.acls.items())
            ),
        )

    def share_compiled_index(self, other: "DeviceForwarding") -> bool:
        """Adopt ``other``'s compiled LPM index when content allows it.

        Only legal between devices with equal :meth:`content_signature`
        (identical tries flatten to identical ranges); the delta engine
        uses this so untouched devices never re-flatten their FIBs.
        Returns whether an index was actually adopted.
        """
        if self._compiled is None and other._compiled is not None:
            self._compiled = other._compiled
            return True
        return False

    @property
    def has_acls(self) -> bool:
        """Whether any interface binds an ACL (engine taint marker)."""
        return bool(self.interface_acls)

    def connected_subnets(self) -> Iterator[tuple[str, Prefix]]:
        for name, (address, length) in self.interface_addresses.items():
            if length < 32:
                yield name, Prefix.containing(address, length)

    def ingress_acl(self, interface: str):
        names = self.interface_acls.get(interface)
        if names is None or names[0] is None:
            return None
        return self.acls.get(names[0])

    def egress_acl(self, interface: str):
        names = self.interface_acls.get(interface)
        if names is None or names[1] is None:
            return None
        return self.acls.get(names[1])

    def prefixes(self) -> Iterator[Prefix]:
        yield from self.trie.keys()

    def __len__(self) -> int:
        return len(self.trie)


class CompiledLpmIndex:
    """A device FIB flattened into sorted, LPM-resolved address ranges.

    ``ranges`` covers the whole 32-bit space: ``(lo, hi, entry)`` where
    ``entry`` is exactly what :meth:`DeviceForwarding.lookup` would
    return for any address in ``[lo, hi]``. Probing is a binary search
    over the range starts — and a batch of sorted probes (the atom
    sweep) resolves in one linear merge.
    """

    __slots__ = ("ranges", "_starts")

    def __init__(
        self, ranges: list[tuple[int, int, Optional[ForwardingEntry]]]
    ) -> None:
        self.ranges = ranges
        self._starts = [lo for lo, _, _ in ranges]

    def __len__(self) -> int:
        return len(self.ranges)

    def probe(self, address: int) -> Optional[ForwardingEntry]:
        """The LPM decision for ``address`` (no trie walk)."""
        if bus.ACTIVE.enabled:
            bus.ACTIVE.count("verify.index_probes")
        return self.ranges[bisect_right(self._starts, address) - 1][2]

    def sweep(self, points: list[int]) -> list[Optional[ForwardingEntry]]:
        """Resolve many ascending probe points in one linear merge."""
        if bus.ACTIVE.enabled:
            bus.ACTIVE.count("verify.index_probes", len(points))
        out: list[Optional[ForwardingEntry]] = []
        ranges = self.ranges
        i = 0
        top = len(ranges) - 1
        for point in points:
            while i < top and ranges[i][1] < point:
                i += 1
            out.append(ranges[i][2])
        return out


class Dataplane:
    """The whole network's forwarding state, ready for verification."""

    def __init__(
        self,
        snapshots: dict[str, AftSnapshot],
        *,
        degraded_nodes: Optional[dict[str, str]] = None,
        degraded_addresses: Optional[dict[str, list[str]]] = None,
    ) -> None:
        self.devices: dict[str, DeviceForwarding] = {
            name: DeviceForwarding(snap) for name, snap in snapshots.items()
        }
        self.address_owner: dict[int, str] = {}
        for name, device in self.devices.items():
            for address in device.local_addresses:
                self.address_owner[address] = name
        # Nodes whose forwarding state could not be extracted (a partial
        # snapshot). Their configured addresses are still known, and any
        # query about them must answer UNKNOWN_DEGRADED — never a
        # confident NO_ROUTE computed from their absence.
        self.degraded_nodes: frozenset[str] = frozenset(degraded_nodes or ())
        self.degraded_owned: dict[int, str] = {}
        for node, addresses in (degraded_addresses or {}).items():
            for text in addresses:
                self.degraded_owned[parse_ipv4(text)] = node
        self.edges: list[L3Edge] = []
        # (device, interface) -> neighbors on the shared subnet
        self.adjacency: dict[tuple[str, str], list[tuple[str, str, int]]] = {}
        self._derive_edges()
        self._fingerprint: Optional[int] = None

    @classmethod
    def from_afts(
        cls,
        snapshots: dict[str, AftSnapshot],
        *,
        degraded_nodes: Optional[dict[str, str]] = None,
        degraded_addresses: Optional[dict[str, list[str]]] = None,
    ) -> "Dataplane":
        return cls(
            snapshots,
            degraded_nodes=degraded_nodes,
            degraded_addresses=degraded_addresses,
        )

    @classmethod
    def from_dicts(cls, raw: dict[str, dict]) -> "Dataplane":
        return cls(
            {name: AftSnapshot.from_dict(data) for name, data in raw.items()}
        )

    @classmethod
    def evolve(
        cls, base: "Dataplane", snapshots: dict[str, AftSnapshot]
    ) -> "Dataplane":
        """A new dataplane that replaces only ``snapshots``' devices.

        Every other :class:`DeviceForwarding` object is shared with
        ``base``, so its cached signatures, tries, and compiled indexes
        carry over, and :class:`~repro.dataplane.delta.DataplaneDelta`
        against ``base`` skips the unchanged devices in O(1). This is
        the constructor the temporal checkpoint recorder uses: a
        convergence burst touches a handful of devices, and re-deriving
        the rest from scratch would dominate the cost of every
        checkpoint. Degraded-node bookkeeping is inherited unchanged —
        the recorder snapshots live routers, so a node degrades only at
        extraction time, never mid-stream.
        """
        plane = cls.__new__(cls)
        plane.devices = dict(base.devices)
        for name, snap in snapshots.items():
            plane.devices[name] = DeviceForwarding(snap)
        plane.address_owner = {}
        for name, device in plane.devices.items():
            for address in device.local_addresses:
                plane.address_owner[address] = name
        plane.degraded_nodes = base.degraded_nodes
        plane.degraded_owned = dict(base.degraded_owned)
        plane.edges = []
        plane.adjacency = {}
        plane._derive_edges()
        plane._fingerprint = None
        return plane

    def _derive_edges(self) -> None:
        """Infer L3 edges: enabled interfaces sharing a subnet."""
        members: dict[Prefix, list[tuple[str, str, int]]] = {}
        for name, device in self.devices.items():
            for iface, subnet in device.connected_subnets():
                address = device.interface_addresses[iface][0]
                members.setdefault(subnet, []).append((name, iface, address))
        for subnet, endpoints in members.items():
            del subnet
            for device, iface, _addr in endpoints:
                neighbors = [
                    (d, i, a)
                    for d, i, a in endpoints
                    if (d, i) != (device, iface)
                ]
                if neighbors:
                    self.adjacency[(device, iface)] = neighbors
            if len(endpoints) >= 2:
                seen: set[frozenset] = set()
                for a_dev, a_if, _a in endpoints:
                    for z_dev, z_if, _z in endpoints:
                        key = frozenset(((a_dev, a_if), (z_dev, z_if)))
                        if (a_dev, a_if) >= (z_dev, z_if) or key in seen:
                            continue
                        seen.add(key)
                        self.edges.append(
                            L3Edge(a_dev, a_if, z_dev, z_if)
                        )

    # -- queries -------------------------------------------------------------

    def device(self, name: str) -> DeviceForwarding:
        return self.devices[name]

    def node_names(self) -> list[str]:
        return sorted(self.devices)

    def neighbor_via(
        self, device: str, interface: str, gateway: Optional[int], dst: int
    ) -> Optional[tuple[str, str]]:
        """Where does traffic leaving (device, interface) arrive?

        Picks the subnet neighbor owning the gateway address (or, for
        directly attached traffic, the destination itself).
        """
        neighbors = self.adjacency.get((device, interface))
        if not neighbors:
            return None
        target = gateway if gateway is not None else dst
        for peer_device, peer_iface, peer_addr in neighbors:
            if peer_addr == target:
                return peer_device, peer_iface
        return None

    def fib_fingerprint(self) -> int:
        """Content hash of everything forwarding behaviour depends on.

        Two dataplanes with equal fingerprints have identical FIBs,
        interface addressing, and ACL bindings, so any verification
        engine built for one is valid for the other — this is the
        snapshot-cache key used by :func:`repro.verify.engine.engine_for`.
        Computed once per instance (the dataplane is immutable after
        construction).
        """
        if self._fingerprint is None:
            # Built from the per-device content signatures (cached on
            # each device), so the fingerprint costs O(devices) after
            # the first device hash — and a DataplaneDelta diffing two
            # fingerprinted dataplanes gets its O(1) unchanged-device
            # skip for free.
            parts: list = [
                (name, self.devices[name].content_signature())
                for name in sorted(self.devices)
            ]
            if self.degraded_nodes or self.degraded_owned:
                # Folded only for partial snapshots so every fault-free
                # fingerprint stays byte-identical to pre-chaos builds.
                parts.append(
                    (
                        "__degraded__",
                        tuple(sorted(self.degraded_nodes)),
                        tuple(sorted(self.degraded_owned.items())),
                    )
                )
            self._fingerprint = hash(tuple(parts))
        return self._fingerprint

    def all_prefixes(self) -> set[Prefix]:
        out: set[Prefix] = set()
        for device in self.devices.values():
            out.update(device.prefixes())
            for name, (address, length) in device.interface_addresses.items():
                del name
                out.add(Prefix.containing(address, 32))
                out.add(Prefix.containing(address, length))
            # ACL destination matches partition the dst space too: an
            # atom must not straddle an ACL dst boundary.
            for acl in device.acls.values():
                for rule in acl.rules:
                    if rule.dst is not None:
                        out.add(rule.dst)
        # Each degraded node's configured addresses become /32 atom
        # boundaries, so a degraded destination is exactly one atom and
        # its UNKNOWN_DEGRADED verdict never bleeds into neighbours.
        for address in self.degraded_owned:
            out.add(Prefix.containing(address, 32))
        return out

    def __len__(self) -> int:
        return len(self.devices)

    def __repr__(self) -> str:
        return (
            f"Dataplane(devices={len(self.devices)}, edges={len(self.edges)})"
        )
