"""The question library (the ``bf.q`` namespace)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.dataplane.forwarding import Disposition
from repro.net.addr import format_ipv4, parse_ipv4
from repro.net.headerspace import HeaderSpace
from repro.net.addr import Prefix
from repro.pybf.answer import Frame, TableAnswer
from repro.verify.differential import differential_reachability
from repro.verify.invariants import detect_loops
from repro.verify.reachability import ReachabilityAnalysis
from repro.verify.traceroute import traceroute as run_traceroute

if TYPE_CHECKING:
    from repro.pybf.session import Session


def _dst_space(dst: Optional[str]) -> Optional[HeaderSpace]:
    if dst is None:
        return None
    return HeaderSpace.dst_prefix(Prefix.parse(dst))


def _dispositions_text(dispositions) -> str:
    return ",".join(sorted(d.value for d in dispositions))


@dataclass
class _Question:
    session: "Session"
    name: str

    def _snapshot(self, name: Optional[str]):
        return self.session.get_snapshot(name)

    def _engine(self, name: Optional[str]):
        """The session-pinned atom-graph engine for a snapshot."""
        return self.session.get_engine(name)


class ReachabilityQuestion(_Question):
    """Exhaustive reachability with disposition filters.

    ``actions="SUCCESS"`` keeps delivered traffic, ``"FAILURE"`` keeps
    dropped/looping traffic (Pybatfish's vocabulary).
    """

    def __init__(
        self,
        session: "Session",
        *,
        startLocation: Optional[str] = None,
        dst: Optional[str] = None,
        actions: str = "SUCCESS",
    ) -> None:
        super().__init__(session, "reachability")
        self.start = startLocation
        self.dst = dst
        self.actions = actions.upper()

    def answer(self, snapshot: Optional[str] = None) -> TableAnswer:
        snap = self._snapshot(snapshot)
        analysis = ReachabilityAnalysis(
            snap.dataplane, engine=self._engine(snapshot)
        )
        ingress = [self.start] if self.start else None
        rows = analysis.analyze(ingress, dst_space=_dst_space(self.dst))
        want_success = self.actions == "SUCCESS"
        out = []
        for row in rows:
            success = all(d.is_success for d in row.dispositions)
            if success != want_success:
                continue
            witness = ""
            if row.sample_traces:
                packet = row.sample_traces[0].sample_packet()
                witness = str(packet) if packet is not None else ""
            out.append(
                {
                    "Ingress": row.ingress,
                    "Destination": format_ipv4(row.sample_destination),
                    "Covered_Addresses": len(row.dst_set),
                    "Dispositions": _dispositions_text(row.dispositions),
                    "Flow": witness,
                    "Trace": str(row.sample_traces[0]) if row.sample_traces else "",
                }
            )
        return TableAnswer(
            self.name,
            Frame(
                ["Ingress", "Destination", "Covered_Addresses",
                 "Dispositions", "Flow", "Trace"],
                out,
            ),
        )


class DifferentialReachabilityQuestion(_Question):
    """Exhaustively compare forwarding across two snapshots."""

    def __init__(
        self,
        session: "Session",
        *,
        dst: Optional[str] = None,
        ingress: Optional[str] = None,
    ) -> None:
        super().__init__(session, "differentialReachability")
        self.dst = dst
        self.ingress = ingress

    def answer(
        self,
        snapshot: Optional[str] = None,
        reference_snapshot: Optional[str] = None,
    ) -> TableAnswer:
        snap = self._snapshot(snapshot)
        ref = self._snapshot(reference_snapshot)
        rows = differential_reachability(
            ref.dataplane,
            snap.dataplane,
            ingress_nodes=[self.ingress] if self.ingress else None,
            dst_space=_dst_space(self.dst),
        )
        out = []
        for row in rows:
            out.append(
                {
                    "Ingress": row.ingress,
                    "Destination": format_ipv4(row.sample_destination),
                    "Covered_Addresses": len(row.dst_set),
                    "Reference_Dispositions": _dispositions_text(
                        row.reference_dispositions
                    ),
                    "Snapshot_Dispositions": _dispositions_text(
                        row.snapshot_dispositions
                    ),
                    "Regressed": row.regressed,
                    "Reference_Trace": (
                        str(row.reference_traces[0]) if row.reference_traces else ""
                    ),
                    "Snapshot_Trace": (
                        str(row.snapshot_traces[0]) if row.snapshot_traces else ""
                    ),
                }
            )
        regressed = sum(1 for r in out if r["Regressed"])
        return TableAnswer(
            self.name,
            Frame(
                [
                    "Ingress",
                    "Destination",
                    "Covered_Addresses",
                    "Reference_Dispositions",
                    "Snapshot_Dispositions",
                    "Regressed",
                    "Reference_Trace",
                    "Snapshot_Trace",
                ],
                out,
            ),
            summary=f"{len(out)} differences ({regressed} regressions)",
        )


class TracerouteQuestion(_Question):
    """Virtual traceroute for one concrete destination."""
    def __init__(
        self, session: "Session", *, startLocation: str, dst: str
    ) -> None:
        super().__init__(session, "traceroute")
        self.start = startLocation
        self.dst = dst

    def answer(self, snapshot: Optional[str] = None) -> TableAnswer:
        snap = self._snapshot(snapshot)
        result = run_traceroute(snap.dataplane, self.start, self.dst)
        rows = [
            {
                "Ingress": self.start,
                "Destination": self.dst,
                "Disposition": trace.disposition.value,
                "Hops": len(trace.hops),
                "Trace": str(trace),
            }
            for trace in result.traces
        ]
        return TableAnswer(
            self.name, Frame(["Ingress", "Destination", "Disposition",
                              "Hops", "Trace"], rows)
        )


class RoutesQuestion(_Question):
    """FIB contents per device (from the extracted AFTs).

    With ``reference_snapshot`` the answer is differential: only entries
    that differ between the two snapshots, tagged with a
    ``Snapshot_Status`` of ``ONLY_IN_SNAPSHOT`` / ``ONLY_IN_REFERENCE``
    / ``CHANGED`` (mirroring Pybatfish's differential routes answer).
    """

    def __init__(self, session: "Session", *, nodes: Optional[str] = None) -> None:
        super().__init__(session, "routes")
        self.nodes = nodes

    def _collect(self, snap) -> dict[tuple[str, str], dict]:
        entries: dict[tuple[str, str], dict] = {}
        for name in snap.dataplane.node_names():
            if self.nodes and name != self.nodes:
                continue
            device = snap.dataplane.devices[name]
            for prefix, entry in sorted(
                device.trie.items(), key=lambda kv: (kv[0].network, kv[0].length)
            ):
                hops = "; ".join(
                    f"{format_ipv4(h.gateway) if h.gateway is not None else 'attached'}"
                    f" via {h.interface}"
                    for h in entry.hops
                )
                entries[(name, str(prefix))] = {
                    "Node": name,
                    "Prefix": str(prefix),
                    "Entry_Type": entry.entry_type,
                    "Next_Hops": hops,
                }
        return entries

    def answer(
        self,
        snapshot: Optional[str] = None,
        reference_snapshot: Optional[str] = None,
    ) -> TableAnswer:
        current = self._collect(self._snapshot(snapshot))
        if reference_snapshot is None:
            return TableAnswer(
                self.name,
                Frame(
                    ["Node", "Prefix", "Entry_Type", "Next_Hops"],
                    list(current.values()),
                ),
            )
        reference = self._collect(self._snapshot(reference_snapshot))
        rows = []
        for key in sorted(set(current) | set(reference)):
            new_row = current.get(key)
            ref_row = reference.get(key)
            if new_row == ref_row:
                continue
            if new_row is None:
                status, row = "ONLY_IN_REFERENCE", dict(ref_row)
            elif ref_row is None:
                status, row = "ONLY_IN_SNAPSHOT", dict(new_row)
            else:
                status, row = "CHANGED", dict(new_row)
                row["Reference_Next_Hops"] = ref_row["Next_Hops"]
            row["Snapshot_Status"] = status
            rows.append(row)
        return TableAnswer(
            self.name,
            Frame(
                ["Node", "Prefix", "Entry_Type", "Next_Hops",
                 "Snapshot_Status"],
                rows,
            ),
            summary=f"{len(rows)} differing FIB entries",
        )


class EdgesQuestion(_Question):
    """Derived L3 edges (Batfish's layer-3 edges question)."""

    def __init__(self, session: "Session") -> None:
        super().__init__(session, "layer3Edges")

    def answer(self, snapshot: Optional[str] = None) -> TableAnswer:
        snap = self._snapshot(snapshot)
        rows = [
            {
                "Interface": f"{edge.device}[{edge.interface}]",
                "Remote_Interface": f"{edge.peer_device}[{edge.peer_interface}]",
            }
            for edge in snap.dataplane.edges
        ]
        return TableAnswer(
            self.name, Frame(["Interface", "Remote_Interface"], rows)
        )


class DetectLoopsQuestion(_Question):
    """Find destinations that forward in a cycle."""
    def __init__(self, session: "Session") -> None:
        super().__init__(session, "detectLoops")

    def answer(self, snapshot: Optional[str] = None) -> TableAnswer:
        snap = self._snapshot(snapshot)
        rows = [
            {
                "Ingress": row.ingress,
                "Destination": format_ipv4(row.sample_destination),
                "Covered_Addresses": len(row.dst_set),
                "Trace": str(row.sample_traces[0]) if row.sample_traces else "",
            }
            for row in detect_loops(snap.dataplane)
        ]
        return TableAnswer(
            self.name,
            Frame(["Ingress", "Destination", "Covered_Addresses", "Trace"], rows),
        )


class SearchFiltersQuestion(_Question):
    """Which traffic does an ACL permit or deny? (Batfish: searchFilters)

    ``action`` is ``"permit"`` or ``"deny"``; the answer enumerates, per
    matching ACL, the exact header space with a witness packet.
    """

    def __init__(
        self,
        session: "Session",
        *,
        nodes: Optional[str] = None,
        filters: Optional[str] = None,
        action: str = "permit",
    ) -> None:
        super().__init__(session, "searchFilters")
        self.nodes = nodes
        self.filters = filters
        self.action = action.lower()

    def answer(self, snapshot: Optional[str] = None) -> TableAnswer:
        snap = self._snapshot(snapshot)
        rows = []
        for node in snap.dataplane.node_names():
            if self.nodes and node != self.nodes:
                continue
            device = snap.dataplane.devices[node]
            for name, acl in sorted(device.acls.items()):
                if self.filters and name != self.filters:
                    continue
                permitted = acl.permit_space()
                space = (
                    permitted
                    if self.action == "permit"
                    else permitted.complement()
                )
                if space.is_empty():
                    continue
                witness = space.sample()
                rows.append(
                    {
                        "Node": node,
                        "Filter_Name": name,
                        "Action": self.action.upper(),
                        "Flow": str(witness) if witness else "",
                    }
                )
        return TableAnswer(
            self.name, Frame(["Node", "Filter_Name", "Action", "Flow"], rows)
        )


class FilterLineReachabilityQuestion(_Question):
    """Find unreachable (shadowed) ACL rules (Batfish's
    filterLineReachability): a rule no packet can ever hit because
    earlier rules cover its entire match space."""

    def __init__(
        self,
        session: "Session",
        *,
        nodes: Optional[str] = None,
        filters: Optional[str] = None,
    ) -> None:
        super().__init__(session, "filterLineReachability")
        self.nodes = nodes
        self.filters = filters

    def answer(self, snapshot: Optional[str] = None) -> TableAnswer:
        from repro.net.headerspace import HeaderSpace

        snap = self._snapshot(snapshot)
        rows = []
        for node in snap.dataplane.node_names():
            if self.nodes and node != self.nodes:
                continue
            device = snap.dataplane.devices[node]
            for name, acl in sorted(device.acls.items()):
                if self.filters and name != self.filters:
                    continue
                covered = HeaderSpace.empty()
                for rule in acl.rules:
                    reachable = rule.match_space() - covered
                    if reachable.is_empty():
                        rows.append(
                            {
                                "Node": node,
                                "Filter_Name": name,
                                "Unreachable_Line": rule.describe(),
                                "Sequence": rule.seq,
                            }
                        )
                    covered = covered | rule.match_space()
        return TableAnswer(
            self.name,
            Frame(
                ["Node", "Filter_Name", "Unreachable_Line", "Sequence"], rows
            ),
            summary=f"{len(rows)} unreachable filter lines",
        )


class DegradedNodesQuestion(_Question):
    """Which nodes of a snapshot are degraded, and why?

    Over a full snapshot the answer is empty. Over a
    :class:`~repro.core.snapshot.PartialSnapshot` it lists every node
    whose extraction exhausted the retry budget, the recorded reason,
    and the addresses whose reachability answers are
    ``UNKNOWN_DEGRADED`` as a result.
    """

    def __init__(self, session: "Session") -> None:
        super().__init__(session, "degradedNodes")

    def answer(self, snapshot: Optional[str] = None) -> TableAnswer:
        snap = self._snapshot(snapshot)
        degraded = getattr(snap, "degraded_nodes", {}) or {}
        addresses = snap.metadata.get("degraded_addresses", {})
        rows = [
            {
                "Node": node,
                "Reason": reason,
                "Degraded_Addresses": ", ".join(addresses.get(node, [])),
            }
            for node, reason in sorted(degraded.items())
        ]
        return TableAnswer(
            self.name,
            Frame(["Node", "Reason", "Degraded_Addresses"], rows),
            summary=f"{len(rows)} degraded node(s)",
        )


class QuestionLibrary:
    """The ``bf.q`` namespace."""

    def __init__(self, session: "Session") -> None:
        self._session = session

    def reachability(self, **kwargs) -> ReachabilityQuestion:
        return ReachabilityQuestion(self._session, **kwargs)

    def differentialReachability(
        self, **kwargs
    ) -> DifferentialReachabilityQuestion:
        return DifferentialReachabilityQuestion(self._session, **kwargs)

    def traceroute(self, **kwargs) -> TracerouteQuestion:
        return TracerouteQuestion(self._session, **kwargs)

    def routes(self, **kwargs) -> RoutesQuestion:
        return RoutesQuestion(self._session, **kwargs)

    def layer3Edges(self) -> EdgesQuestion:
        return EdgesQuestion(self._session)

    def detectLoops(self) -> DetectLoopsQuestion:
        return DetectLoopsQuestion(self._session)

    def searchFilters(self, **kwargs) -> SearchFiltersQuestion:
        return SearchFiltersQuestion(self._session, **kwargs)

    def filterLineReachability(self, **kwargs) -> FilterLineReachabilityQuestion:
        return FilterLineReachabilityQuestion(self._session, **kwargs)

    def degradedNodes(self) -> DegradedNodesQuestion:
        return DegradedNodesQuestion(self._session)
