"""Tabular answers, shaped like Pybatfish's TableAnswer/frame pairing."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional


@dataclass
class Frame:
    """A light stand-in for the pandas frame Pybatfish returns."""

    columns: list[str]
    rows: list[dict[str, Any]] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[dict[str, Any]]:
        return iter(self.rows)

    def filter(self, predicate: Callable[[dict], bool]) -> "Frame":
        return Frame(self.columns, [r for r in self.rows if predicate(r)])

    def column(self, name: str) -> list[Any]:
        return [row.get(name) for row in self.rows]

    def head(self, n: int = 5) -> "Frame":
        return Frame(self.columns, self.rows[:n])

    def to_string(self, max_width: int = 38) -> str:
        if not self.rows:
            return "(no rows)"
        widths = {
            col: min(
                max_width,
                max([len(col)] + [len(str(r.get(col, ""))) for r in self.rows]),
            )
            for col in self.columns
        }

        def fmt(value: Any, col: str) -> str:
            text = str(value)
            if len(text) > widths[col]:
                text = text[: widths[col] - 1] + "…"
            return text.ljust(widths[col])

        header = " | ".join(col.ljust(widths[col]) for col in self.columns)
        rule = "-+-".join("-" * widths[col] for col in self.columns)
        body = [
            " | ".join(fmt(row.get(col, ""), col) for col in self.columns)
            for row in self.rows
        ]
        return "\n".join([header, rule] + body)

    def __str__(self) -> str:
        return self.to_string()


@dataclass
class TableAnswer:
    """The object ``question.answer()`` returns."""

    question_name: str
    _frame: Frame
    summary: Optional[str] = None

    def frame(self) -> Frame:
        return self._frame

    def __len__(self) -> int:
        return len(self._frame)

    def __str__(self) -> str:
        head = f"Answer[{self.question_name}] ({len(self._frame)} rows)"
        if self.summary:
            head += f": {self.summary}"
        return head + "\n" + self._frame.to_string()
