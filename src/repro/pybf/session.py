"""The Pybatfish-style ``Session``."""

from __future__ import annotations

from typing import Optional

from repro.core.snapshot import Snapshot
from repro.pybf.questions import QuestionLibrary


class SessionError(RuntimeError):
    """Raised for snapshot-management misuse."""
    pass


class Session:
    """Holds named snapshots and exposes the question library as ``.q``.

    Mirrors the Pybatfish workflow: initialize snapshots, set the
    current one, ask questions. Snapshots are produced by either backend
    in :mod:`repro.core` (or loaded from disk via
    :meth:`Snapshot.load <repro.core.snapshot.Snapshot.load>`).
    """

    def __init__(self) -> None:
        self._snapshots: dict[str, Snapshot] = {}
        self._current: Optional[str] = None
        self.q = QuestionLibrary(self)

    # -- snapshot management -------------------------------------------------

    def init_snapshot(
        self, snapshot: Snapshot, name: Optional[str] = None, overwrite: bool = False
    ) -> str:
        """Register a snapshot; it becomes the current one."""
        name = name or snapshot.name
        if name in self._snapshots and not overwrite:
            raise SessionError(
                f"snapshot {name!r} already initialized (overwrite=True?)"
            )
        self._snapshots[name] = snapshot
        self._current = name
        return name

    def set_snapshot(self, name: str) -> None:
        if name not in self._snapshots:
            raise SessionError(f"unknown snapshot: {name!r}")
        self._current = name

    def delete_snapshot(self, name: str) -> None:
        self._snapshots.pop(name, None)
        if self._current == name:
            self._current = next(iter(self._snapshots), None)

    def list_snapshots(self) -> list[str]:
        return list(self._snapshots)

    def get_snapshot(self, name: Optional[str] = None) -> Snapshot:
        target = name or self._current
        if target is None:
            raise SessionError("no snapshot initialized")
        try:
            return self._snapshots[target]
        except KeyError:
            raise SessionError(f"unknown snapshot: {target!r}") from None
