"""The Pybatfish-style ``Session``."""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.core.snapshot import Snapshot
from repro.pybf.questions import QuestionLibrary

if TYPE_CHECKING:
    from repro.service.store import SnapshotStore
    from repro.verify.engine import AtomGraphEngine


class SessionError(RuntimeError):
    """Raised for snapshot-management misuse."""
    pass


class Session:
    """Holds named snapshots and exposes the question library as ``.q``.

    Mirrors the Pybatfish workflow: initialize snapshots, set the
    current one, ask questions. Snapshots are produced by either backend
    in :mod:`repro.core` (or loaded from disk via
    :meth:`Snapshot.load <repro.core.snapshot.Snapshot.load>`).

    With ``store`` set, the session is backed by a content-addressed
    :class:`~repro.service.store.SnapshotStore`: snapshots register on
    init and every question's engine comes from the store's pinned
    entry, so any number of sessions (and the verification service's
    worker threads) sharing one store share one engine per distinct
    forwarding state. Without a store, engines are pinned per session
    exactly as before.
    """

    def __init__(self, store: Optional["SnapshotStore"] = None) -> None:
        self._snapshots: dict[str, Snapshot] = {}
        # Per-snapshot atom-graph engines, pinned for the session's
        # lifetime so the module-level LRU cache cannot evict the
        # analyses backing registered snapshots between questions.
        self._engines: dict[str, "AtomGraphEngine"] = {}
        self._store = store
        self._current: Optional[str] = None
        self.q = QuestionLibrary(self)

    # -- snapshot management -------------------------------------------------

    def init_snapshot(
        self,
        snapshot: Snapshot,
        name: Optional[str] = None,
        overwrite: bool = False,
        parent: Optional[int] = None,
    ) -> str:
        """Register a snapshot; it becomes the current one.

        ``parent`` (a fingerprint) marks which store-resident content
        this snapshot churned from, enabling incremental engine
        derivation; ignored for store-less sessions.
        """
        name = name or snapshot.name
        if name in self._snapshots and not overwrite:
            raise SessionError(
                f"snapshot {name!r} already initialized (overwrite=True?)"
            )
        self._snapshots[name] = snapshot
        self._engines.pop(name, None)
        if self._store is not None:
            self._store.register(snapshot, parent=parent)
        self._current = name
        return name

    def set_snapshot(self, name: str) -> None:
        if name not in self._snapshots:
            raise SessionError(f"unknown snapshot: {name!r}")
        self._current = name

    def delete_snapshot(self, name: str) -> None:
        if name not in self._snapshots:
            raise SessionError(f"unknown snapshot: {name!r}")
        del self._snapshots[name]
        self._engines.pop(name, None)
        if self._current == name:
            self._current = next(iter(self._snapshots), None)

    def list_snapshots(self) -> list[str]:
        return list(self._snapshots)

    def get_snapshot(self, name: Optional[str] = None) -> Snapshot:
        target = name or self._current
        if target is None:
            raise SessionError("no snapshot initialized")
        try:
            return self._snapshots[target]
        except KeyError:
            raise SessionError(f"unknown snapshot: {target!r}") from None

    # -- verification engine reuse -------------------------------------------

    def get_engine(self, name: Optional[str] = None) -> "AtomGraphEngine":
        """The atom-graph engine for a registered snapshot.

        Questions route their dataplane analyses through this method, so
        every question asked of the same snapshot shares one engine (one
        set of per-atom graph passes) no matter how many snapshots the
        session juggles. Store-backed sessions delegate to the store,
        sharing engines *across* sessions and worker threads by
        forwarding content.
        """
        from repro.verify.engine import engine_for

        target = name or self._current
        snapshot = self.get_snapshot(target)
        if self._store is not None:
            return self._store.engine(snapshot)
        engine = self._engines.get(target)
        if engine is None or engine.dataplane is not snapshot.dataplane:
            engine = engine_for(snapshot.dataplane)
            self._engines[target] = engine
        return engine
