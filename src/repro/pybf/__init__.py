"""Pybatfish-style query frontend.

The paper reuses Pybatfish so operators keep the query interface they
know; this package mirrors that surface over our engine::

    from repro.pybf import Session

    bf = Session()
    bf.init_snapshot(snap, name="candidate")
    bf.init_snapshot(ref, name="reference")
    answer = bf.q.differentialReachability().answer(
        snapshot="candidate", reference_snapshot="reference")
    for row in answer.frame().rows:
        ...

Snapshots come from either backend (:mod:`repro.core`) — the frontend
cannot tell emulation-derived and model-derived dataplanes apart, which
is precisely the paper's drop-in-backend claim.
"""

from repro.pybf.answer import TableAnswer, Frame
from repro.pybf.session import Session

__all__ = ["Frame", "Session", "TableAnswer"]
