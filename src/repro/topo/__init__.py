"""Network topology model, file format, and generators."""

from repro.topo.model import Link, LinkEnd, NodeSpec, Topology, TopologyError
from repro.topo.parser import parse_topology, format_topology
from repro.topo.builder import TopologyBuilder, fabric_topology, line_topology, ring_topology, wan_topology

__all__ = [
    "Link",
    "LinkEnd",
    "NodeSpec",
    "Topology",
    "TopologyBuilder",
    "TopologyError",
    "fabric_topology",
    "format_topology",
    "line_topology",
    "parse_topology",
    "ring_topology",
    "wan_topology",
]
