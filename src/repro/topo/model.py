"""Topology data model.

Mirrors the shape of a KNE topology: named nodes with a vendor/model and
per-node resource requests, plus point-to-point links between named
interfaces. The topology is pure data — bring-up happens in
:mod:`repro.kube.kne`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional


class TopologyError(ValueError):
    """Raised for structurally invalid topologies."""


@dataclass(frozen=True)
class LinkEnd:
    """One endpoint of a link: (node name, interface name)."""

    node: str
    interface: str

    def __str__(self) -> str:
        return f"{self.node}:{self.interface}"


@dataclass(frozen=True)
class Link:
    """An undirected point-to-point link."""

    a: LinkEnd
    z: LinkEnd

    def other(self, end: LinkEnd) -> LinkEnd:
        if end == self.a:
            return self.z
        if end == self.z:
            return self.a
        raise TopologyError(f"{end} is not an endpoint of {self}")

    def endpoints(self) -> tuple[LinkEnd, LinkEnd]:
        return (self.a, self.z)

    def __str__(self) -> str:
        return f"{self.a} <-> {self.z}"


@dataclass
class NodeSpec:
    """A device in the topology.

    ``vendor`` selects the router OS implementation (see
    :mod:`repro.vendors`); ``config`` carries the device's startup
    configuration text. Resource requests default per vendor when left
    at zero (cEOS: 0.5 vCPU / 1 GiB, per the paper's §5).
    """

    name: str
    vendor: str = "arista"
    model: str = "ceos"
    os_version: str = ""
    config: str = ""
    cpu: float = 0.0
    memory_gb: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise TopologyError("node name must be non-empty")


class Topology:
    """A named set of nodes and links with validation."""

    def __init__(self, name: str = "topology") -> None:
        self.name = name
        self._nodes: dict[str, NodeSpec] = {}
        self._links: list[Link] = []
        self._used_ports: set[LinkEnd] = set()

    # -- construction ------------------------------------------------------

    def add_node(self, spec: NodeSpec) -> NodeSpec:
        if spec.name in self._nodes:
            raise TopologyError(f"duplicate node name: {spec.name}")
        self._nodes[spec.name] = spec
        return spec

    def add_link(
        self, a_node: str, a_int: str, z_node: str, z_int: str
    ) -> Link:
        a = LinkEnd(a_node, a_int)
        z = LinkEnd(z_node, z_int)
        for end in (a, z):
            if end.node not in self._nodes:
                raise TopologyError(f"link references unknown node: {end.node}")
            if end in self._used_ports:
                raise TopologyError(f"interface already wired: {end}")
        if a == z:
            raise TopologyError(f"self-loop link: {a}")
        link = Link(a, z)
        self._links.append(link)
        self._used_ports.add(a)
        self._used_ports.add(z)
        return link

    def set_config(self, node: str, config: str) -> None:
        self.node(node).config = config

    # -- queries -------------------------------------------------------------

    @property
    def nodes(self) -> list[NodeSpec]:
        return list(self._nodes.values())

    @property
    def links(self) -> list[Link]:
        return list(self._links)

    def node(self, name: str) -> NodeSpec:
        try:
            return self._nodes[name]
        except KeyError:
            raise TopologyError(f"unknown node: {name}") from None

    def has_node(self, name: str) -> bool:
        return name in self._nodes

    def node_names(self) -> list[str]:
        return list(self._nodes)

    def links_of(self, node: str) -> Iterator[Link]:
        for link in self._links:
            if node in (link.a.node, link.z.node):
                yield link

    def neighbors(self, node: str) -> list[str]:
        out = []
        for link in self.links_of(node):
            end = link.a if link.a.node == node else link.z
            out.append(link.other(end).node)
        return out

    def find_link(self, a_node: str, z_node: str) -> Optional[Link]:
        """First link between two nodes, either direction."""
        for link in self._links:
            ends = {link.a.node, link.z.node}
            if ends == {a_node, z_node}:
                return link
        return None

    def validate(self) -> None:
        """Raise :class:`TopologyError` on structural problems."""
        if not self._nodes:
            raise TopologyError("topology has no nodes")
        for link in self._links:
            for end in link.endpoints():
                if end.node not in self._nodes:
                    raise TopologyError(f"dangling link end: {end}")

    def __len__(self) -> int:
        return len(self._nodes)

    def __repr__(self) -> str:
        return (
            f"Topology({self.name!r}, nodes={len(self._nodes)}, "
            f"links={len(self._links)})"
        )
