"""Programmatic topology construction and standard generators.

Interface naming follows the vendor convention: Arista nodes get
``EthernetN``, Nokia SR Linux nodes get ``ethernet-1/N``. The builder
tracks the next free data port per node so generators can wire links
without bookkeeping.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.topo.model import Link, NodeSpec, Topology

_PORT_PATTERNS = {
    "arista": "Ethernet{n}",
    "nokia": "ethernet-1/{n}",
}


def interface_name(vendor: str, index: int) -> str:
    """The ``index``-th (1-based) data-plane port name for ``vendor``."""
    pattern = _PORT_PATTERNS.get(vendor, "eth{n}")
    return pattern.format(n=index)


class TopologyBuilder:
    """Fluent helper for building topologies in code."""

    def __init__(self, name: str = "topology") -> None:
        self.topology = Topology(name)
        self._next_port: dict[str, int] = {}

    def node(
        self,
        name: str,
        *,
        vendor: str = "arista",
        model: str = "ceos",
        os_version: str = "",
        config: str = "",
        cpu: float = 0.0,
        memory_gb: float = 0.0,
    ) -> "TopologyBuilder":
        self.topology.add_node(
            NodeSpec(
                name=name,
                vendor=vendor,
                model=model,
                os_version=os_version,
                config=config,
                cpu=cpu,
                memory_gb=memory_gb,
            )
        )
        self._next_port[name] = 1
        return self

    def next_interface(self, node: str) -> str:
        """Allocate the next free data port name on ``node``."""
        vendor = self.topology.node(node).vendor
        index = self._next_port[node]
        self._next_port[node] = index + 1
        return interface_name(vendor, index)

    def link(
        self,
        a_node: str,
        z_node: str,
        *,
        a_int: Optional[str] = None,
        z_int: Optional[str] = None,
    ) -> Link:
        """Wire two nodes, auto-allocating port names unless given."""
        if a_int is None:
            a_int = self.next_interface(a_node)
        if z_int is None:
            z_int = self.next_interface(z_node)
        return self.topology.add_link(a_node, a_int, z_node, z_int)

    def build(self) -> Topology:
        self.topology.validate()
        return self.topology


def line_topology(n: int, *, vendor: str = "arista", name: str = "line") -> Topology:
    """R1 <-> R2 <-> ... <-> Rn."""
    builder = TopologyBuilder(name)
    for i in range(1, n + 1):
        builder.node(f"r{i}", vendor=vendor)
    for i in range(1, n):
        builder.link(f"r{i}", f"r{i + 1}")
    return builder.build()


def ring_topology(n: int, *, vendor: str = "arista", name: str = "ring") -> Topology:
    """A cycle of ``n`` routers."""
    if n < 3:
        raise ValueError("ring needs at least 3 nodes")
    builder = TopologyBuilder(name)
    for i in range(1, n + 1):
        builder.node(f"r{i}", vendor=vendor)
    for i in range(1, n):
        builder.link(f"r{i}", f"r{i + 1}")
    builder.link(f"r{n}", "r1")
    return builder.build()


def fabric_topology(
    spines: int,
    leaves: int,
    *,
    vendor: str = "arista",
    name: str = "fabric",
) -> Topology:
    """A two-tier leaf/spine fabric (full bipartite wiring)."""
    builder = TopologyBuilder(name)
    for s in range(1, spines + 1):
        builder.node(f"spine{s}", vendor=vendor)
    for leaf in range(1, leaves + 1):
        builder.node(f"leaf{leaf}", vendor=vendor)
    for s in range(1, spines + 1):
        for leaf in range(1, leaves + 1):
            builder.link(f"spine{s}", f"leaf{leaf}")
    return builder.build()


def wan_topology(
    n: int,
    *,
    degree: int = 3,
    seed: int = 7,
    vendors: tuple[str, ...] = ("arista",),
    name: str = "wan",
) -> Topology:
    """A random connected WAN-like graph.

    Builds a random spanning tree for connectivity, then adds extra
    edges until the average degree approaches ``degree``. With more than
    one vendor in ``vendors``, nodes alternate — the multi-vendor replica
    of the paper's §5 convergence experiment.
    """
    rng = random.Random(seed)
    builder = TopologyBuilder(name)
    names = [f"r{i}" for i in range(1, n + 1)]
    for i, node_name in enumerate(names):
        builder.node(node_name, vendor=vendors[i % len(vendors)])
    linked: set[frozenset[str]] = set()
    # Random spanning tree: attach each node to a random earlier node.
    for i in range(1, n):
        j = rng.randrange(i)
        builder.link(names[i], names[j])
        linked.add(frozenset((names[i], names[j])))
    target_edges = max(n - 1, (n * degree) // 2)
    attempts = 0
    while len(linked) < target_edges and attempts < 20 * target_edges:
        attempts += 1
        a, b = rng.sample(names, 2)
        key = frozenset((a, b))
        if key in linked:
            continue
        builder.link(a, b)
        linked.add(key)
    return builder.build()
