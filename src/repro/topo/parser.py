"""KNE-style topology file parser and formatter.

KNE describes topologies in protobuf text format. We support the subset
used by this project::

    name: "fig2"
    node {
      name: "r1"
      vendor: "arista"
      model: "ceos"
      os_version: "4.34.0F"
      config_file: "r1.cfg"
      cpu: 0.5
      memory_gb: 1.0
    }
    link {
      a_node: "r1"
      a_int: "Ethernet1"
      z_node: "r2"
      z_int: "Ethernet1"
    }

``config_file`` paths are resolved relative to the topology file (or the
``config_dir`` argument) and loaded into :attr:`NodeSpec.config`.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Iterator, Optional, Union

from repro.topo.model import NodeSpec, Topology, TopologyError

_TOKEN_RE = re.compile(
    r"""
    \s*(?:
        (?P<comment>\#[^\n]*)
      | (?P<lbrace>\{)
      | (?P<rbrace>\})
      | (?P<key>[A-Za-z_][A-Za-z0-9_]*)\s*:?
      | (?P<string>"(?:[^"\\]|\\.)*")
      | (?P<number>-?\d+(?:\.\d+)?)
    )
    """,
    re.VERBOSE,
)


class TopologyParseError(TopologyError):
    """Raised on malformed topology files."""


def _tokenize(text: str) -> Iterator[tuple[str, str]]:
    pos = 0
    while pos < len(text):
        while pos < len(text) and text[pos].isspace():
            pos += 1
        if pos >= len(text):
            return
        match = _TOKEN_RE.match(text, pos)
        if match is None or match.end() == pos:
            remainder = text[pos : pos + 20]
            raise TopologyParseError(f"unexpected input at: {remainder!r}")
        pos = match.end()
        kind = match.lastgroup
        if kind == "comment" or kind is None:
            continue
        yield kind, match.group(kind)


class _Parser:
    def __init__(self, text: str) -> None:
        self._tokens = list(_tokenize(text))
        self._pos = 0

    def _peek(self) -> Optional[tuple[str, str]]:
        if self._pos < len(self._tokens):
            return self._tokens[self._pos]
        return None

    def _next(self) -> tuple[str, str]:
        tok = self._peek()
        if tok is None:
            raise TopologyParseError("unexpected end of file")
        self._pos += 1
        return tok

    def parse_message(self) -> dict:
        """Parse fields until EOF or a closing brace."""
        fields: dict = {}
        while True:
            tok = self._peek()
            if tok is None or tok[0] == "rbrace":
                return fields
            kind, key = self._next()
            if kind != "key":
                raise TopologyParseError(f"expected field name, got {key!r}")
            value = self._parse_value()
            fields.setdefault(key, []).append(value)

    def _parse_value(self):
        kind, raw = self._next()
        if kind == "lbrace":
            fields = self.parse_message()
            kind2, raw2 = self._next()
            if kind2 != "rbrace":
                raise TopologyParseError(f"expected '}}', got {raw2!r}")
            return fields
        if kind == "string":
            return _unquote(raw)
        if kind == "number":
            return float(raw) if "." in raw else int(raw)
        raise TopologyParseError(f"expected value, got {raw!r}")


def _unquote(raw: str) -> str:
    body = raw[1:-1]
    return body.replace('\\"', '"').replace("\\\\", "\\").replace("\\n", "\n")


def _single(fields: dict, key: str, default=None):
    values = fields.get(key)
    if not values:
        return default
    if len(values) > 1:
        raise TopologyParseError(f"field {key!r} given {len(values)} times")
    return values[0]


def parse_topology(
    text: str,
    *,
    config_dir: Optional[Union[str, Path]] = None,
) -> Topology:
    """Parse topology ``text``; load referenced config files if present."""
    fields = _Parser(text).parse_message()
    topo = Topology(name=_single(fields, "name", "topology"))
    for node_fields in fields.get("node", []):
        name = _single(node_fields, "name")
        if name is None:
            raise TopologyParseError("node missing name")
        spec = NodeSpec(
            name=name,
            vendor=_single(node_fields, "vendor", "arista"),
            model=_single(node_fields, "model", "ceos"),
            os_version=_single(node_fields, "os_version", ""),
            config=_single(node_fields, "config", ""),
            cpu=float(_single(node_fields, "cpu", 0.0)),
            memory_gb=float(_single(node_fields, "memory_gb", 0.0)),
        )
        config_file = _single(node_fields, "config_file")
        if config_file is not None:
            base = Path(config_dir) if config_dir is not None else Path(".")
            path = base / config_file
            try:
                spec.config = path.read_text()
            except OSError as exc:
                raise TopologyParseError(
                    f"cannot read config_file for node {name}: {path}"
                ) from exc
        topo.add_node(spec)
    for link_fields in fields.get("link", []):
        parts = [
            _single(link_fields, key)
            for key in ("a_node", "a_int", "z_node", "z_int")
        ]
        if any(p is None for p in parts):
            raise TopologyParseError(f"incomplete link: {link_fields}")
        topo.add_link(*parts)
    topo.validate()
    return topo


def load_topology(path: Union[str, Path]) -> Topology:
    """Load a topology file, resolving config files beside it."""
    path = Path(path)
    return parse_topology(path.read_text(), config_dir=path.parent)


def format_topology(topo: Topology, *, include_configs: bool = False) -> str:
    """Render a topology back to the text format."""
    out: list[str] = [f'name: "{topo.name}"']
    for node in topo.nodes:
        out.append("node {")
        out.append(f'  name: "{node.name}"')
        out.append(f'  vendor: "{node.vendor}"')
        out.append(f'  model: "{node.model}"')
        if node.os_version:
            out.append(f'  os_version: "{node.os_version}"')
        if node.cpu:
            out.append(f"  cpu: {node.cpu}")
        if node.memory_gb:
            out.append(f"  memory_gb: {node.memory_gb}")
        if include_configs and node.config:
            escaped = node.config.replace("\\", "\\\\").replace('"', '\\"')
            escaped = escaped.replace("\n", "\\n")
            out.append(f'  config: "{escaped}"')
        out.append("}")
    for link in topo.links:
        out.append("link {")
        out.append(f'  a_node: "{link.a.node}"')
        out.append(f'  a_int: "{link.a.interface}"')
        out.append(f'  z_node: "{link.z.node}"')
        out.append(f'  z_int: "{link.z.interface}"')
        out.append("}")
    return "\n".join(out) + "\n"
