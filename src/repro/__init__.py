"""repro — model-free network verification.

A from-scratch reproduction of "Towards Accessible Model-Free
Verification" (HotNets '25): container-style control-plane emulation,
gNMI/OpenConfig AFT extraction, an exhaustive dataplane verification
engine with a Pybatfish-style frontend, and a model-based baseline to
compare against.

Quickstart::

    from repro import ModelFreeBackend, Session
    from repro.corpus import fig3_scenario

    scenario = fig3_scenario()
    snapshot = ModelFreeBackend(scenario.topology).run()

    bf = Session()
    bf.init_snapshot(snapshot, name="emulated")
    print(bf.q.routes(nodes="r2").answer())
"""

from repro.core import (
    ModelFreeBackend,
    NativeBatfishBackend,
    ScenarioContext,
    Snapshot,
    compare_snapshots,
    explore_nondeterminism,
)
from repro.ensemble import (
    HOLDS_ALWAYS,
    HOLDS_SOMETIMES,
    NEVER,
    EnsembleReport,
    EnsembleRunner,
    InvariantVerdict,
)
from repro.pybf import Session
from repro.whatif import (
    CampaignReport,
    FaultScenario,
    WhatIfCampaign,
    single_link_failures,
    single_node_failures,
)

__version__ = "1.0.0"

__all__ = [
    "HOLDS_ALWAYS",
    "HOLDS_SOMETIMES",
    "NEVER",
    "CampaignReport",
    "EnsembleReport",
    "EnsembleRunner",
    "FaultScenario",
    "InvariantVerdict",
    "ModelFreeBackend",
    "NativeBatfishBackend",
    "ScenarioContext",
    "Session",
    "Snapshot",
    "WhatIfCampaign",
    "compare_snapshots",
    "explore_nondeterminism",
    "single_link_failures",
    "single_node_failures",
    "__version__",
]
