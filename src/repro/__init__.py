"""repro — model-free network verification.

A from-scratch reproduction of "Towards Accessible Model-Free
Verification" (HotNets '25): container-style control-plane emulation,
gNMI/OpenConfig AFT extraction, an exhaustive dataplane verification
engine with a Pybatfish-style frontend, and a model-based baseline to
compare against.

Quickstart::

    from repro import ModelFreeBackend, Session
    from repro.corpus import fig3_scenario

    scenario = fig3_scenario()
    snapshot = ModelFreeBackend(scenario.topology).run()

    bf = Session()
    bf.init_snapshot(snapshot, name="emulated")
    print(bf.q.routes(nodes="r2").answer())
"""

from repro.core import (
    ModelFreeBackend,
    NativeBatfishBackend,
    ScenarioContext,
    Snapshot,
    compare_snapshots,
    explore_nondeterminism,
)
from repro.pybf import Session

__version__ = "1.0.0"

__all__ = [
    "ModelFreeBackend",
    "NativeBatfishBackend",
    "ScenarioContext",
    "Session",
    "Snapshot",
    "compare_snapshots",
    "explore_nondeterminism",
    "__version__",
]
