"""BGP extension features: multipath and route reflection."""

from repro.net.addr import Prefix, parse_ipv4
from repro.protocols.bgp_attrs import (
    BgpPath,
    Origin,
    PathAttributes,
    multipath_set,
)

from tests.helpers import mini_net


def _path(next_hop, peer, router_id, local_pref=None, as_path=(65002,)):
    return BgpPath(
        attrs=PathAttributes(
            next_hop=parse_ipv4(next_hop),
            as_path=as_path,
            local_pref=local_pref,
        ),
        from_ebgp=True,
        peer_ip=parse_ipv4(peer),
        peer_router_id=router_id,
    )


class TestMultipathSet:
    def test_single_path_mode(self):
        paths = [
            _path("10.0.0.1", "10.0.0.1", 1),
            _path("10.0.1.1", "10.0.1.1", 2),
        ]
        chosen = multipath_set(paths, lambda _nh: 10, maximum_paths=1)
        assert len(chosen) == 1

    def test_equal_paths_both_chosen(self):
        paths = [
            _path("10.0.0.1", "10.0.0.1", 1),
            _path("10.0.1.1", "10.0.1.1", 2),
        ]
        chosen = multipath_set(paths, lambda _nh: 10, maximum_paths=4)
        assert len(chosen) == 2
        assert chosen[0].peer_router_id == 1  # best path first

    def test_unequal_local_pref_not_multipath(self):
        paths = [
            _path("10.0.0.1", "10.0.0.1", 1, local_pref=200),
            _path("10.0.1.1", "10.0.1.1", 2, local_pref=100),
        ]
        chosen = multipath_set(paths, lambda _nh: 10, maximum_paths=4)
        assert len(chosen) == 1

    def test_unequal_as_path_length_not_multipath(self):
        paths = [
            _path("10.0.0.1", "10.0.0.1", 1, as_path=(65002,)),
            _path("10.0.1.1", "10.0.1.1", 2, as_path=(65002, 65003)),
        ]
        chosen = multipath_set(paths, lambda _nh: 10, maximum_paths=4)
        assert len(chosen) == 1

    def test_unequal_igp_metric_not_multipath(self):
        paths = [
            _path("10.0.0.1", "10.0.0.1", 1),
            _path("10.0.1.1", "10.0.1.1", 2),
        ]

        def metric(next_hop):
            return 5 if next_hop == parse_ipv4("10.0.0.1") else 50

        chosen = multipath_set(paths, metric, maximum_paths=4)
        assert len(chosen) == 1

    def test_maximum_paths_caps(self):
        paths = [
            _path(f"10.0.{i}.1", f"10.0.{i}.1", i) for i in range(1, 6)
        ]
        chosen = multipath_set(paths, lambda _nh: 10, maximum_paths=3)
        assert len(chosen) == 3

    def test_empty(self):
        assert multipath_set([], lambda _nh: 10, maximum_paths=4) == []


class TestMultipathEndToEnd:
    def build(self, maximum_paths):
        """r1 dual-homed to u1/u2 (same AS) announcing one prefix."""
        r1 = f"""\
hostname r1
ip routing
interface Ethernet1
   no switchport
   ip address 10.0.0.0/31
interface Ethernet2
   no switchport
   ip address 10.0.1.0/31
router bgp 65001
   router-id 1.1.1.1
   maximum-paths {maximum_paths}
   neighbor 10.0.0.1 remote-as 65002
   neighbor 10.0.1.1 remote-as 65002
"""

        def upstream(name, address, rid):
            return f"""\
hostname {name}
ip routing
interface Ethernet1
   no switchport
   ip address {address}/31
router bgp 65002
   router-id {rid}
   neighbor {_sub_one(address)} remote-as 65001
   network 99.99.99.0/24
ip route 99.99.99.0/24 Null0
"""

        net = mini_net(
            {
                "r1": r1,
                "u1": upstream("u1", "10.0.0.1", "9.9.9.1"),
                "u2": upstream("u2", "10.0.1.1", "9.9.9.2"),
            },
            [
                ("r1", "Ethernet1", "u1", "Ethernet1"),
                ("r1", "Ethernet2", "u2", "Ethernet1"),
            ],
        )
        net.converge()
        return net

    def test_default_single_path(self):
        net = self.build(1)
        entry = net.router("r1").rib.fib.lookup(parse_ipv4("99.99.99.1"))
        assert len(entry.next_hops) == 1

    def test_maximum_paths_installs_ecmp(self):
        net = self.build(4)
        entry = net.router("r1").rib.fib.lookup(parse_ipv4("99.99.99.1"))
        assert len(entry.next_hops) == 2
        interfaces = {nh.interface for nh in entry.next_hops}
        assert interfaces == {"Ethernet1", "Ethernet2"}

    def test_ecmp_survives_aft_extraction(self):
        from repro.gnmi.aft import AftSnapshot

        net = self.build(4)
        snapshot = AftSnapshot.from_router(net.router("r1"))
        entry = next(
            e for e in snapshot.entries if e.prefix == "99.99.99.0/24"
        )
        group = snapshot.next_hop_groups[entry.next_hop_group]
        assert len(group.next_hop_indices) == 2


def _sub_one(address: str) -> str:
    head, _, last = address.rpartition(".")
    return f"{head}.{int(last) - 1}"


class TestRouteReflection:
    def build(self):
        """Hub-and-spoke iBGP: rr reflects between clients c1 and c2.

        No c1<->c2 session exists: without reflection, c2 never learns
        c1's prefix.
        """
        def cfg(name, index, loopback, interfaces, bgp_extra):
            lines = [
                f"hostname {name}",
                "ip routing",
                "router isis default",
                f"   net 49.0001.0000.0000.{index:04d}.00",
                "   address-family ipv4 unicast",
                "interface Loopback0",
                f"   ip address {loopback}/32",
                "   isis enable default",
                "   isis passive",
            ]
            for iface, address in interfaces:
                lines += [
                    f"interface {iface}",
                    "   no switchport",
                    f"   ip address {address}",
                    "   isis enable default",
                ]
            lines += ["router bgp 65000", f"   router-id {loopback}"]
            lines += bgp_extra
            return "\n".join(lines) + "\n"

        rr = cfg(
            "rr", 1, "2.2.2.1",
            [("Ethernet1", "10.0.0.0/31"), ("Ethernet2", "10.0.1.0/31")],
            [
                "   neighbor 2.2.2.2 remote-as 65000",
                "   neighbor 2.2.2.2 update-source Loopback0",
                "   neighbor 2.2.2.2 route-reflector-client",
                "   neighbor 2.2.2.3 remote-as 65000",
                "   neighbor 2.2.2.3 update-source Loopback0",
                "   neighbor 2.2.2.3 route-reflector-client",
            ],
        )
        c1 = cfg(
            "c1", 2, "2.2.2.2", [("Ethernet1", "10.0.0.1/31")],
            [
                "   neighbor 2.2.2.1 remote-as 65000",
                "   neighbor 2.2.2.1 update-source Loopback0",
                "   network 88.88.88.0/24",
                "ip route 88.88.88.0/24 Null0",
            ],
        )
        c2 = cfg(
            "c2", 3, "2.2.2.3", [("Ethernet1", "10.0.1.1/31")],
            [
                "   neighbor 2.2.2.1 remote-as 65000",
                "   neighbor 2.2.2.1 update-source Loopback0",
            ],
        )
        net = mini_net(
            {"rr": rr, "c1": c1, "c2": c2},
            [
                ("rr", "Ethernet1", "c1", "Ethernet1"),
                ("rr", "Ethernet2", "c2", "Ethernet1"),
            ],
        )
        net.converge()
        return net

    def test_client_route_reflected_to_other_client(self):
        net = self.build()
        route = net.router("c2").rib.best(Prefix.parse("88.88.88.0/24"))
        assert route is not None

    def test_reflection_preserves_next_hop(self):
        net = self.build()
        rib_in = net.router("c2").bgp.adj_rib_in[parse_ipv4("2.2.2.1")]
        attrs = rib_in[Prefix.parse("88.88.88.0/24")]
        # Reflector did not rewrite the next hop (no next-hop-self).
        assert attrs.next_hop == parse_ipv4("2.2.2.2")

    def test_without_client_flag_no_reflection(self):
        net = self.build()
        # Sanity inverse: a full-mesh-less iBGP without the client flag
        # would not propagate — covered by the engine's default rule,
        # asserted indirectly: the rr itself holds the route as iBGP.
        route = net.router("rr").rib.best(Prefix.parse("88.88.88.0/24"))
        assert route is not None
