"""Tests for the vendor-neutral device model and routing policy."""

import pytest

from repro.device.interfaces import InterfaceConfig, IsisInterfaceSettings
from repro.device.model import BgpConfig, DeviceConfig, IsisConfig
from repro.device.routing_policy import (
    Community,
    MatchResult,
    PrefixList,
    PrefixListEntry,
    RouteMap,
    RouteMapClause,
)
from repro.net.addr import Prefix, parse_ipv4
from repro.protocols.bgp_attrs import PathAttributes


class TestInterfaceConfig:
    def test_routed_requires_address_and_mode(self):
        iface = InterfaceConfig(name="Ethernet1")
        assert not iface.is_routed
        iface.address = parse_ipv4("10.0.0.1")
        iface.prefix_length = 31
        assert iface.is_routed
        iface.switchport = True
        assert not iface.is_routed

    def test_shutdown_disables_routing(self):
        iface = InterfaceConfig(
            name="Ethernet1",
            address=parse_ipv4("10.0.0.1"),
            prefix_length=31,
            shutdown=True,
        )
        assert not iface.is_routed

    def test_connected_prefix(self):
        iface = InterfaceConfig(
            name="Ethernet1", address=parse_ipv4("10.0.0.5"), prefix_length=24
        )
        assert iface.connected_prefix() == Prefix.parse("10.0.0.0/24")

    def test_connected_prefix_none_for_switchport(self):
        iface = InterfaceConfig(
            name="Ethernet1",
            address=parse_ipv4("10.0.0.5"),
            prefix_length=24,
            switchport=True,
        )
        assert iface.connected_prefix() is None

    @pytest.mark.parametrize(
        "name,expected",
        [
            ("Loopback0", True),
            ("loopback12", True),
            ("lo0", True),
            ("system0", True),
            ("Ethernet1", False),
            ("ethernet-1/1", False),
            ("localinterface", False),
        ],
    )
    def test_is_loopback_naming(self, name, expected):
        assert InterfaceConfig(name=name).is_loopback is expected


class TestDeviceConfig:
    def test_interface_get_or_create(self):
        device = DeviceConfig()
        a = device.interface("Ethernet1")
        b = device.interface("Ethernet1")
        assert a is b

    def test_local_addresses(self):
        device = DeviceConfig()
        eth = device.interface("Ethernet1")
        eth.address = parse_ipv4("10.0.0.1")
        eth.prefix_length = 31
        sw = device.interface("Ethernet2")
        sw.address = parse_ipv4("10.0.0.3")
        sw.prefix_length = 31
        sw.switchport = True
        assert device.local_addresses() == [parse_ipv4("10.0.0.1")]

    def test_loopback_address(self):
        device = DeviceConfig()
        lo = device.interface("Loopback0")
        lo.address = parse_ipv4("2.2.2.2")
        lo.prefix_length = 32
        assert device.loopback_address() == parse_ipv4("2.2.2.2")

    def test_no_loopback_returns_none(self):
        assert DeviceConfig().loopback_address() is None


class TestIsisConfig:
    def test_net_decomposition(self):
        isis = IsisConfig(net="49.0001.1010.1040.1030.00")
        assert isis.system_id == "1010.1040.1030"
        assert isis.area == "49.0001"

    def test_malformed_net(self):
        assert IsisConfig(net="49.0001").system_id == ""


class TestPrefixList:
    def test_exact_match(self):
        plist = PrefixList("PL")
        plist.add(PrefixListEntry(10, True, Prefix.parse("10.0.0.0/8")))
        assert plist.permits(Prefix.parse("10.0.0.0/8"))
        assert not plist.permits(Prefix.parse("10.1.0.0/16"))

    def test_le_range(self):
        plist = PrefixList("PL")
        plist.add(PrefixListEntry(10, True, Prefix.parse("10.0.0.0/8"), le=24))
        assert plist.permits(Prefix.parse("10.1.0.0/16"))
        assert plist.permits(Prefix.parse("10.1.2.0/24"))
        assert not plist.permits(Prefix.parse("10.1.2.4/30"))

    def test_ge_implies_open_top(self):
        plist = PrefixList("PL")
        plist.add(PrefixListEntry(10, True, Prefix.parse("10.0.0.0/8"), ge=24))
        assert plist.permits(Prefix.parse("10.0.0.1/32"))
        assert not plist.permits(Prefix.parse("10.1.0.0/16"))

    def test_first_match_wins(self):
        plist = PrefixList("PL")
        plist.add(PrefixListEntry(20, True, Prefix.parse("10.0.0.0/8"), le=32))
        plist.add(
            PrefixListEntry(10, False, Prefix.parse("10.13.0.0/16"), le=32)
        )
        assert not plist.permits(Prefix.parse("10.13.1.0/24"))
        assert plist.permits(Prefix.parse("10.14.0.0/16"))

    def test_implicit_deny(self):
        assert not PrefixList("PL").permits(Prefix.parse("1.0.0.0/8"))


def attrs(**kwargs) -> PathAttributes:
    defaults = dict(next_hop=parse_ipv4("192.0.2.1"))
    defaults.update(kwargs)
    return PathAttributes(**defaults)


class TestRouteMap:
    def test_permit_with_set_actions(self):
        route_map = RouteMap("RM")
        route_map.add(
            RouteMapClause(
                seq=10,
                permit=True,
                set_local_pref=200,
                set_med=50,
                set_communities=(Community(65000, 100),),
            )
        )
        verdict, updated = route_map.evaluate(
            Prefix.parse("10.0.0.0/8"), attrs(), {}
        )
        assert verdict is MatchResult.PERMIT
        assert updated.local_pref == 200
        assert updated.med == 50
        assert Community(65000, 100) in updated.communities

    def test_deny_clause(self):
        route_map = RouteMap("RM")
        route_map.add(RouteMapClause(seq=10, permit=False))
        verdict, _ = route_map.evaluate(Prefix.parse("10.0.0.0/8"), attrs(), {})
        assert verdict is MatchResult.DENY

    def test_no_match_is_implicit_deny_signal(self):
        route_map = RouteMap("RM")
        route_map.add(
            RouteMapClause(seq=10, permit=True, match_prefix_list="NOPE")
        )
        verdict, _ = route_map.evaluate(Prefix.parse("10.0.0.0/8"), attrs(), {})
        assert verdict is MatchResult.NO_MATCH

    def test_match_prefix_list(self):
        plist = PrefixList("LOOPS")
        plist.add(
            PrefixListEntry(10, True, Prefix.parse("2.2.0.0/16"), le=32)
        )
        route_map = RouteMap("RM")
        route_map.add(
            RouteMapClause(
                seq=10, permit=True, match_prefix_list="LOOPS",
                set_local_pref=300,
            )
        )
        route_map.add(RouteMapClause(seq=20, permit=False))
        lists = {"LOOPS": plist}
        verdict, updated = route_map.evaluate(
            Prefix.parse("2.2.2.1/32"), attrs(), lists
        )
        assert verdict is MatchResult.PERMIT and updated.local_pref == 300
        verdict, _ = route_map.evaluate(
            Prefix.parse("9.9.9.9/32"), attrs(), lists
        )
        assert verdict is MatchResult.DENY

    def test_match_community(self):
        route_map = RouteMap("RM")
        route_map.add(
            RouteMapClause(
                seq=10, permit=True,
                match_community=Community(65000, 666),
            )
        )
        tagged = attrs(communities=(Community(65000, 666),))
        verdict, _ = route_map.evaluate(Prefix.parse("10.0.0.0/8"), tagged, {})
        assert verdict is MatchResult.PERMIT
        verdict, _ = route_map.evaluate(Prefix.parse("10.0.0.0/8"), attrs(), {})
        assert verdict is MatchResult.NO_MATCH

    def test_as_path_prepend(self):
        route_map = RouteMap("RM")
        route_map.add(
            RouteMapClause(
                seq=10, permit=True, set_as_path_prepend=(65001, 65001)
            )
        )
        _, updated = route_map.evaluate(
            Prefix.parse("10.0.0.0/8"), attrs(as_path=(65002,)), {}
        )
        assert updated.as_path == (65001, 65001, 65002)

    def test_clause_ordering(self):
        route_map = RouteMap("RM")
        route_map.add(RouteMapClause(seq=20, permit=True, set_local_pref=20))
        route_map.add(RouteMapClause(seq=10, permit=True, set_local_pref=10))
        _, updated = route_map.evaluate(Prefix.parse("10.0.0.0/8"), attrs(), {})
        assert updated.local_pref == 10


class TestCommunity:
    def test_parse(self):
        assert Community.parse("65000:123") == Community(65000, 123)

    def test_parse_malformed(self):
        with pytest.raises(ValueError):
            Community.parse("not-a-community")

    def test_str(self):
        assert str(Community(1, 2)) == "1:2"
