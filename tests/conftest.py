"""Shared fixtures.

Expensive emulation runs (full Fig. 2 / Fig. 3 pipelines) are
session-scoped: many tests assert different properties of the same
converged snapshots.
"""

from __future__ import annotations

import pytest

from repro.core.context import ScenarioContext
from repro.core.pipeline import ModelFreeBackend, NativeBatfishBackend
from repro.corpus.fig2 import fig2_scenario
from repro.corpus.fig3 import fig3_scenario
from repro.protocols.timers import FAST_TIMERS


@pytest.fixture(scope="session")
def fig3():
    return fig3_scenario()


@pytest.fixture(scope="session")
def fig3_emulated(fig3):
    backend = ModelFreeBackend(fig3.topology, timers=FAST_TIMERS,
                               quiet_period=5.0)
    snapshot = backend.run(snapshot_name="fig3-emulated")
    return backend, snapshot


@pytest.fixture(scope="session")
def fig3_model(fig3):
    backend = NativeBatfishBackend(fig3.topology)
    return backend, backend.run(snapshot_name="fig3-model")


@pytest.fixture(scope="session")
def fig2():
    return fig2_scenario()


@pytest.fixture(scope="session")
def fig2_snapshots(fig2):
    healthy_backend = ModelFreeBackend(
        fig2.topology, timers=FAST_TIMERS, quiet_period=5.0
    )
    healthy = healthy_backend.run(snapshot_name="fig2-healthy")
    buggy_backend = ModelFreeBackend(
        fig2.buggy_topology(), timers=FAST_TIMERS, quiet_period=5.0
    )
    buggy = buggy_backend.run(snapshot_name="fig2-buggy")
    return healthy, buggy


@pytest.fixture()
def fast_context():
    return ScenarioContext()
