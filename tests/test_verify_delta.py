"""Delta (incremental) engine maintenance tests.

The load-bearing property: for every corpus and perturbation where the
delta path claims applicability, :meth:`AtomGraphEngine.apply_delta`
must produce verdicts identical *row for row* — dispositions, accepts,
taint flags, UNKNOWN_DEGRADED — to a cold build of the perturbed
snapshot. Everything else here (fallback reasons, the lineage cache in
``engine_for``, the store's parent walk, the delta metrics) guards the
plumbing that decides *when* the patch runs, never what it computes.
"""

from __future__ import annotations

import random
import threading

import pytest

from repro.core.context import ScenarioContext
from repro.core.pipeline import ModelFreeBackend
from repro.corpus.fig2 import fig2_scenario
from repro.corpus.production import production_scenario, scaled_timers
from repro.dataplane.delta import DataplaneDelta
from repro.dataplane.forwarding import Disposition
from repro.dataplane.model import Dataplane
from repro.gnmi.aft import (
    AftInterface,
    AftIpv4Entry,
    AftNextHop,
    AftNextHopGroup,
    AftSnapshot,
)
from repro.device.acl import AclRule
from repro.net.addr import Prefix
from repro.obs import tracing
from repro.protocols.timers import FAST_TIMERS
from repro.service.store import SnapshotStore
from repro.verify.engine import (
    AtomGraphEngine,
    DeltaUnapplicable,
    clear_engine_cache,
    engine_for,
)


def assert_delta_matches_cold(base_engine, target_dataplane):
    """Apply the delta and compare every (ingress, atom) verdict — the
    whole AtomVerdict, so accepts sets and taint flags count too —
    against a cold build of the target. Returns the derived engine.

    The derived partition refines the cold one (base boundaries plus
    delta boundaries cover every target FIB boundary), so each derived
    atom lies inside exactly one cold atom and a sample-address lookup
    compares like with like.
    """
    delta = DataplaneDelta(base_engine.dataplane, target_dataplane)
    derived = base_engine.apply_delta(delta)
    cold = AtomGraphEngine(target_dataplane)
    cold.precompute()
    assert derived._complete
    names = target_dataplane.node_names()
    for index, atom in enumerate(derived.atoms):
        cold_index = cold.atom_index_of(atom.min())
        for ingress in names:
            got = derived.verdict(ingress, index)
            want = cold.verdict(ingress, cold_index)
            assert got == want, (
                f"ingress={ingress} atom={atom}: delta={got} cold={want}"
            )
    return derived


@pytest.fixture(scope="module")
def prod():
    """A small production corpus: scenario, backend, and the converged
    base context/snapshot shared by the perturbation tests."""
    scenario = production_scenario(8, peers=1, routes_per_peer=80, seed=7)
    backend = ModelFreeBackend(
        scenario.topology, timers=scaled_timers(80), quiet_period=30.0
    )
    context = ScenarioContext(
        name="prod", injectors=tuple(scenario.injectors)
    )
    return backend, context, backend.run(context)


class TestDeltaOracleEquivalence:
    """apply_delta == cold build, on real converged corpora."""

    def test_fig2_every_single_link_cut(self, fig2, monkeypatch):
        # The mechanism under test is the patch, not the cost gate:
        # fig. 2 has so few atoms that honest cuts exceed the default
        # dirty-fraction threshold, so lift it for the sweep.
        monkeypatch.setenv("MFV_DELTA_THRESHOLD", "1.0")
        backend = ModelFreeBackend(
            fig2.topology, timers=FAST_TIMERS, quiet_period=5.0
        )
        base = backend.run(ScenarioContext())
        engine = AtomGraphEngine(base.dataplane)
        for link in fig2.topology.links:
            context = ScenarioContext().with_link_down(
                link.a.node, link.z.node
            )
            target = backend.run(context)
            if target.dataplane.fib_fingerprint() == (
                base.dataplane.fib_fingerprint()
            ):
                continue
            assert_delta_matches_cold(engine, target.dataplane)

    def test_fig3_single_link_cut(self, fig3, monkeypatch):
        monkeypatch.setenv("MFV_DELTA_THRESHOLD", "1.0")
        backend = ModelFreeBackend(
            fig3.topology, timers=FAST_TIMERS, quiet_period=5.0
        )
        base = backend.run(ScenarioContext())
        engine = AtomGraphEngine(base.dataplane)
        link = fig3.topology.links[0]
        target = backend.run(
            ScenarioContext().with_link_down(link.a.node, link.z.node)
        )
        assert_delta_matches_cold(engine, target.dataplane)

    def test_production_link_cuts(self, prod, monkeypatch):
        monkeypatch.setenv("MFV_DELTA_THRESHOLD", "1.0")
        backend, context, base = prod
        engine = AtomGraphEngine(base.dataplane)
        # One off-path cut (few dirty atoms) and one on a peer-route
        # shortest path (legitimately reroutes a large table slice).
        for a, z in (("r7", "r5"), ("r2", "r1")):
            target = backend.run(context.with_link_down(a, z))
            derived = assert_delta_matches_cold(engine, target.dataplane)
            assert derived.delta_stats.dirty_atoms > 0

    def test_production_randomized_churn_chain(self, prod, monkeypatch):
        """k successive perturbations, each step derived from the
        previous *derived* engine — patches must compose, not just
        survive one hop from a cold base."""
        monkeypatch.setenv("MFV_DELTA_THRESHOLD", "1.0")
        backend, context, base = prod
        links = [
            (link.a.node, link.z.node)
            for link in backend.topology.links
        ]
        picks = random.Random(11).sample(links, 2)
        steps = [
            context.with_link_down(*picks[0]),
            context.with_link_down(*picks[0]).with_link_down(*picks[1]),
            context.with_link_down(*picks[1]),
        ]
        engine = AtomGraphEngine(base.dataplane)
        for step in steps:
            target = backend.run(step)
            if target.dataplane.fib_fingerprint() == (
                engine.dataplane.fib_fingerprint()
            ):
                continue
            engine = assert_delta_matches_cold(engine, target.dataplane)


# -- hand-built dataplanes for the structural cases --------------------------


def _iface(name, cidr):
    address, _, length = cidr.partition("/")
    return AftInterface(
        name=name,
        ipv4_address=address,
        prefix_length=int(length),
        enabled=True,
    )


def _chain_afts(b_routes_c=True, with_c=False, b_acl_rules=None):
    """a -> b (-> c): a tiny line network.

    ``b_routes_c`` keeps b's route toward 3.3.3.3; ``with_c`` includes
    device c itself; ``b_acl_rules`` attaches an ingress ACL on b.
    """
    a = AftSnapshot(device="a")
    a.interfaces = [_iface("eth0", "10.0.0.0/31"), _iface("lo", "1.1.1.1/32")]
    a.next_hops[1] = AftNextHop(
        index=1, interface="eth0", ip_address="10.0.0.1"
    )
    a.next_hop_groups[1] = AftNextHopGroup(group_id=1, next_hop_indices=(1,))
    a.entries = [
        AftIpv4Entry(
            prefix="3.3.3.3/32", entry_type="forward", next_hop_group=1
        ),
        AftIpv4Entry(
            prefix="2.2.2.2/32", entry_type="forward", next_hop_group=1
        ),
        AftIpv4Entry(prefix="1.1.1.1/32", entry_type="receive"),
    ]

    b = AftSnapshot(device="b")
    iface0 = _iface("eth0", "10.0.0.1/31")
    if b_acl_rules is not None:
        iface0 = AftInterface(
            name="eth0",
            ipv4_address="10.0.0.1",
            prefix_length=31,
            enabled=True,
            acl_in="FILTER",
        )
        b.acls = {"FILTER": tuple(b_acl_rules)}
    b.interfaces = [
        iface0,
        _iface("eth1", "10.0.1.0/31"),
        _iface("lo", "2.2.2.2/32"),
    ]
    b.next_hops[1] = AftNextHop(
        index=1, interface="eth1", ip_address="10.0.1.1"
    )
    b.next_hop_groups[1] = AftNextHopGroup(group_id=1, next_hop_indices=(1,))
    b.entries = [AftIpv4Entry(prefix="2.2.2.2/32", entry_type="receive")]
    if b_routes_c:
        b.entries.append(
            AftIpv4Entry(
                prefix="3.3.3.3/32", entry_type="forward", next_hop_group=1
            )
        )

    snapshots = {"a": a, "b": b}
    if with_c:
        c = AftSnapshot(device="c")
        c.interfaces = [
            _iface("eth0", "10.0.1.1/31"),
            _iface("lo", "3.3.3.3/32"),
        ]
        c.entries = [AftIpv4Entry(prefix="3.3.3.3/32", entry_type="receive")]
        snapshots["c"] = c
    return snapshots


class TestDegradedFlips:
    """Degraded-ownership flips become unconditionally dirty atoms and
    the UNKNOWN_DEGRADED verdict propagates identically to a cold
    build, in both flip directions."""

    def _degraded(self):
        return Dataplane.from_afts(
            _chain_afts(b_routes_c=True),
            degraded_nodes={"c": "crashed"},
            degraded_addresses={"c": ["3.3.3.3"]},
        )

    def _recovered(self):
        # c stayed unextracted but is no longer claimed degraded, and
        # the IGP withdrew b's stale route toward it.
        return Dataplane.from_afts(_chain_afts(b_routes_c=False))

    def test_degraded_to_recovered(self):
        base = self._degraded()
        engine = AtomGraphEngine(base)
        address = Prefix.parse("3.3.3.3/32").first
        assert Disposition.UNKNOWN_DEGRADED in engine.dispositions(
            "a", engine.atom_index_of(address)
        )
        derived = assert_delta_matches_cold(engine, self._recovered())
        assert Disposition.UNKNOWN_DEGRADED not in derived.dispositions(
            "a", derived.atom_index_of(address)
        )

    def test_recovered_to_degraded(self):
        engine = AtomGraphEngine(self._recovered())
        derived = assert_delta_matches_cold(engine, self._degraded())
        address = Prefix.parse("3.3.3.3/32").first
        assert Disposition.UNKNOWN_DEGRADED in derived.dispositions(
            "a", derived.atom_index_of(address)
        )


class TestFallbackReasons:
    def test_device_set_change_is_unapplicable(self):
        base = Dataplane.from_afts(_chain_afts(with_c=True))
        target = Dataplane.from_afts(_chain_afts(b_routes_c=False))
        engine = AtomGraphEngine(base)
        delta = DataplaneDelta(base, target)
        assert delta.fallback_reason() == "device-set"
        with pytest.raises(DeltaUnapplicable) as err:
            engine.apply_delta(delta)
        assert err.value.reason == "device-set"

    def test_acl_change_is_unapplicable(self):
        permissive = [AclRule(seq=10, permit=True)]
        restrictive = [
            AclRule(seq=10, permit=True, src=Prefix.parse("1.1.1.1/32")),
            AclRule(seq=20, permit=False),
        ]
        base = Dataplane.from_afts(_chain_afts(b_acl_rules=permissive))
        target = Dataplane.from_afts(_chain_afts(b_acl_rules=restrictive))
        engine = AtomGraphEngine(base)
        delta = DataplaneDelta(base, target)
        assert delta.fallback_reason() == "acl-change"
        with pytest.raises(DeltaUnapplicable) as err:
            engine.apply_delta(delta)
        assert err.value.reason == "acl-change"

    def test_base_mismatch(self):
        base = Dataplane.from_afts(_chain_afts())
        other = Dataplane.from_afts(_chain_afts())
        target = Dataplane.from_afts(_chain_afts(b_routes_c=False))
        with pytest.raises(DeltaUnapplicable) as err:
            AtomGraphEngine(other).apply_delta(DataplaneDelta(base, target))
        assert err.value.reason == "base-mismatch"

    def test_dirty_fraction_threshold_env(self, monkeypatch):
        base = Dataplane.from_afts(_chain_afts())
        target = Dataplane.from_afts(_chain_afts(b_routes_c=False))
        monkeypatch.setenv("MFV_DELTA_THRESHOLD", "0.001")
        with pytest.raises(DeltaUnapplicable) as err:
            AtomGraphEngine(base).apply_delta(DataplaneDelta(base, target))
        assert err.value.reason == "dirty-fraction"
        monkeypatch.setenv("MFV_DELTA_THRESHOLD", "1.0")
        assert_delta_matches_cold(AtomGraphEngine(base), target)


class TestEngineForLineage:
    def test_cache_miss_with_base_derives(self, monkeypatch):
        monkeypatch.setenv("MFV_DELTA_THRESHOLD", "1.0")
        clear_engine_cache()
        base = Dataplane.from_afts(_chain_afts())
        target = Dataplane.from_afts(_chain_afts(b_routes_c=False))
        base_engine = engine_for(base)
        derived = engine_for(target, base=base_engine)
        stats = derived.delta_stats
        assert stats is not None and stats.fallback is None
        assert stats.base_fingerprint == base.fib_fingerprint()
        assert stats.dirty_atoms > 0
        # The derivation registered under the content key: plain
        # lookups now return the same object.
        assert engine_for(target) is derived
        clear_engine_cache()

    def test_fallback_engine_records_reason(self, monkeypatch):
        monkeypatch.setenv("MFV_DELTA_THRESHOLD", "0.001")
        clear_engine_cache()
        base = Dataplane.from_afts(_chain_afts())
        target = Dataplane.from_afts(_chain_afts(b_routes_c=False))
        engine = engine_for(target, base=engine_for(base))
        assert engine.delta_stats is not None
        assert engine.delta_stats.fallback == "dirty-fraction"
        clear_engine_cache()

    def test_inflight_cold_build_does_not_clobber_delta(self, monkeypatch):
        """The staleness hazard: a cold build for a fingerprint is in
        flight when a delta derivation for the same content lands. The
        first registration must win — both callers converge on ONE
        engine object — and the late build is counted as discarded."""
        monkeypatch.setenv("MFV_DELTA_THRESHOLD", "1.0")
        clear_engine_cache()
        base = Dataplane.from_afts(_chain_afts())
        target = Dataplane.from_afts(_chain_afts(b_routes_c=False))
        base_engine = engine_for(base)

        entered = threading.Event()
        release = threading.Event()
        original_init = AtomGraphEngine.__init__

        def gated_init(self, dataplane, atoms=None, *, _observe=True):
            # Stall only the cold build of the target (the delta path
            # constructs its engine with _observe=False).
            if _observe and dataplane is target:
                entered.set()
                assert release.wait(timeout=10)
            original_init(self, dataplane, atoms, _observe=_observe)

        monkeypatch.setattr(AtomGraphEngine, "__init__", gated_init)
        results = {}

        def cold_build():
            results["cold"] = engine_for(target)

        with tracing() as tracer:
            thread = threading.Thread(target=cold_build)
            thread.start()
            assert entered.wait(timeout=10)
            # Cold build is mid-flight; the delta derivation lands now.
            derived = engine_for(target, base=base_engine)
            release.set()
            thread.join(timeout=10)
            assert not thread.is_alive()
            assert results["cold"] is derived
            assert engine_for(target) is derived
            assert tracer.counters["verify.engine_build_discarded"] == 1
        clear_engine_cache()


class TestDeltaMetrics:
    def test_apply_emits_counters_and_histograms(self, monkeypatch):
        monkeypatch.setenv("MFV_DELTA_THRESHOLD", "1.0")
        clear_engine_cache()
        base = Dataplane.from_afts(_chain_afts())
        target = Dataplane.from_afts(_chain_afts(b_routes_c=False))
        with tracing() as tracer:
            derived = engine_for(target, base=engine_for(base))
            assert tracer.counters["verify.delta_applies"] == 1
            assert tracer.counters["verify.delta_dirty_atoms"] == (
                derived.delta_stats.dirty_atoms
            )
            records = {
                record["name"]: record
                for record in tracer.registry.collect()
            }
            assert records["verify.dirty_atoms"]["count"] == 1
            assert records["verify.delta_apply_seconds"]["count"] == 1
        clear_engine_cache()

    def test_fallback_emits_labeled_counter(self, monkeypatch):
        monkeypatch.setenv("MFV_DELTA_THRESHOLD", "0.001")
        clear_engine_cache()
        base = Dataplane.from_afts(_chain_afts())
        target = Dataplane.from_afts(_chain_afts(b_routes_c=False))
        with tracing() as tracer:
            engine_for(target, base=engine_for(base))
            assert tracer.counters["verify.delta_fallbacks"] == 1
            reason_records = [
                record
                for record in tracer.registry.collect()
                if record["name"] == "verify.delta_fallback_reasons"
            ]
            assert reason_records[0]["labels"] == {
                "reason": "dirty-fraction"
            }
        clear_engine_cache()


class TestStoreLineage:
    def _snapshots(self, prod_tuple, monkeypatch):
        monkeypatch.setenv("MFV_DELTA_THRESHOLD", "1.0")
        backend, context, base = prod_tuple
        cut = backend.run(context.with_link_down("r7", "r5"))
        return base, cut

    def test_register_with_parent_derives_incrementally(
        self, prod, monkeypatch
    ):
        base, cut = self._snapshots(prod, monkeypatch)
        clear_engine_cache()
        store = SnapshotStore(capacity=4)
        base_fp = store.register(base)
        store.engine(base)  # pin the parent engine
        cut_fp = store.register(cut, parent=base_fp)
        assert store.stats()["lineage_edges"] == 1
        engine = store.get(cut_fp).engine()
        assert engine.delta_stats is not None
        assert engine.delta_stats.fallback is None
        assert engine.delta_stats.base_fingerprint == base_fp
        clear_engine_cache()

    def test_lineage_walk_skips_nonresident_intermediates(
        self, prod, monkeypatch
    ):
        base, cut = self._snapshots(prod, monkeypatch)
        clear_engine_cache()
        store = SnapshotStore(capacity=4)
        base_fp = store.register(base)
        base_engine = store.engine(base)
        # A phantom intermediate that was evicted (never resident here):
        # the walk must skip over it to the grandparent.
        phantom = base_fp ^ 0xDEAD
        store.record_lineage(phantom, base_fp)
        store.record_lineage(cut.dataplane.fib_fingerprint(), phantom)
        assert (
            store._delta_base(cut.dataplane.fib_fingerprint())
            is base_engine
        )
        clear_engine_cache()

    def test_lineage_depth_caps_the_walk(self, prod, monkeypatch):
        base, cut = self._snapshots(prod, monkeypatch)
        monkeypatch.setenv("MFV_DELTA_LINEAGE_DEPTH", "1")
        clear_engine_cache()
        store = SnapshotStore(capacity=4)
        base_fp = store.register(base)
        store.engine(base)
        phantom = base_fp ^ 0xBEEF
        cut_fp = cut.dataplane.fib_fingerprint()
        store.record_lineage(phantom, base_fp)
        store.record_lineage(cut_fp, phantom)
        # Depth 1 stops at the non-resident phantom; the direct child
        # of the resident base still resolves.
        assert store._delta_base(cut_fp) is None
        direct = SnapshotStore(capacity=4)
        direct_base_fp = direct.register(base)
        direct.engine(base)
        direct.record_lineage(cut_fp, direct_base_fp)
        assert direct._delta_base(cut_fp) is not None
        clear_engine_cache()

    def test_depth_zero_disables_delta_derivation(self, prod, monkeypatch):
        base, cut = self._snapshots(prod, monkeypatch)
        monkeypatch.setenv("MFV_DELTA_LINEAGE_DEPTH", "0")
        clear_engine_cache()
        store = SnapshotStore(capacity=4)
        base_fp = store.register(base)
        store.engine(base)
        cut_fp = store.register(cut, parent=base_fp)
        engine = store.get(cut_fp).engine()
        assert engine.delta_stats is None  # cold build, no base offered
        clear_engine_cache()

    def test_service_differential_question_records_lineage(
        self, prod, monkeypatch
    ):
        from repro.service import VerificationService

        base, cut = self._snapshots(prod, monkeypatch)
        clear_engine_cache()
        with VerificationService(workers=1) as svc:
            svc.register_snapshot(base, name="base")
            svc.register_snapshot(cut, name="cut")
            job = svc.submit(
                "differentialReachability",
                snapshot="cut",
                reference_snapshot="base",
            )
            assert job.result(timeout=30).value is not None
            stats = svc.store.stats()
            assert stats["lineage_edges"] >= 1
        clear_engine_cache()


class TestDeltaStatsCli:
    def test_diff_delta_stats_block(self, prod, tmp_path, monkeypatch, capsys):
        from repro.cli import main

        monkeypatch.setenv("MFV_DELTA_THRESHOLD", "1.0")
        backend, context, base = prod
        cut = backend.run(context.with_link_down("r7", "r5"))
        base_path = tmp_path / "base.json"
        cut_path = tmp_path / "cut.json"
        base.save(base_path)
        cut.save(cut_path)
        clear_engine_cache()
        code = main(
            ["diff", str(base_path), str(cut_path), "--delta-stats"]
        )
        out = capsys.readouterr().out
        assert code in (0, 2)
        assert "delta stats:" in out
        assert "dirty atoms:" in out
        assert "reused" in out
        clear_engine_cache()
