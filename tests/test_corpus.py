"""Corpus structural tests: the generated configs must land in the
paper's reported bands."""

import pytest

from repro.batfish_model.parser import parse_with_model
from repro.corpus.baggage import baggage_lines, count_config_lines
from repro.corpus.fig2 import fig2_scenario
from repro.corpus.fig3 import fig3_scenario
from repro.corpus.production import production_scenario, scaled_timers
from repro.corpus.routes import full_table
from repro.vendors.arista.config_parser import parse_arista_config
from repro.vendors.nokia.config_parser import parse_nokia_config


class TestFig2Corpus:
    @pytest.fixture(scope="class")
    def scenario(self):
        return fig2_scenario()

    def test_six_nodes_five_links(self, scenario):
        assert len(scenario.topology) == 6
        assert len(scenario.topology.links) == 5

    def test_line_counts_in_paper_band(self, scenario):
        """§5: 'The number of lines in each configuration ranges from
        62-82.'"""
        for config in scenario.configs.values():
            lines = count_config_lines(config)
            assert 62 <= lines <= 82, lines

    def test_unrecognized_lines_in_paper_band(self, scenario):
        """§5: Batfish 'failed to recognize between 38 and 42 of lines
        in each configuration'."""
        for config in scenario.configs.values():
            result = parse_with_model(config)
            assert 38 <= result.unrecognized_count <= 42

    def test_emulation_parses_everything(self, scenario):
        for config in scenario.configs.values():
            _, diagnostics = parse_arista_config(config)
            assert diagnostics == []

    def test_unrecognized_includes_the_papers_examples(self, scenario):
        result = parse_with_model(scenario.configs["r1"])
        text = " ".join(u.text for u in result.unrecognized)
        for marker in ("PowerManager", "LedPolicy", "Thermostat",
                       "gnmi", "mpls"):
            assert marker in text, marker

    def test_buggy_variant_shuts_down_r2_r3_session(self, scenario):
        assert "shutdown" in scenario.buggy_configs["r2"]
        assert "shutdown" in scenario.buggy_configs["r3"]
        assert "shutdown" not in scenario.configs["r2"].split("daemon")[0]

    def test_as_plan(self, scenario):
        assert scenario.as_members[65003] == ("r3", "r4")


class TestFig3Corpus:
    def test_r1_matches_paper_snippet_shape(self):
        scenario = fig3_scenario()
        r1 = scenario.configs["r1"]
        # The exact pathological ordering from Fig. 3.
        ip_index = r1.index("ip address 100.64.0.1/31")
        sw_index = r1.index("no switchport")
        assert ip_index < sw_index
        assert "isis enable default" in r1
        assert "net 49.0001.1010.1040.1030.00" in r1

    def test_wiring_matches_interfaces(self):
        scenario = fig3_scenario()
        link = scenario.topology.find_link("r1", "r2")
        ends = {str(link.a), str(link.z)}
        assert ends == {"r1:Ethernet2", "r2:Ethernet1"}


class TestProductionCorpus:
    @pytest.fixture(scope="class")
    def scenario(self):
        return production_scenario(12, peers=2, routes_per_peer=100, seed=11)

    def test_multivendor(self, scenario):
        vendors = {spec.vendor for spec in scenario.topology.nodes}
        assert vendors == {"arista", "nokia"}

    def test_configs_parse_cleanly_per_vendor(self, scenario):
        for spec in scenario.topology.nodes:
            if spec.vendor == "arista":
                _, diagnostics = parse_arista_config(spec.config)
            else:
                _, diagnostics = parse_nokia_config(spec.config)
            assert diagnostics == [], (spec.name, diagnostics[:3])

    def test_injectors_attached_to_distinct_edges(self, scenario):
        gateways = [i.gateway_node for i in scenario.injectors]
        assert len(set(gateways)) == len(gateways) == 2

    def test_injector_prefixes_disjoint_between_peers(self, scenario):
        a, b = scenario.injectors
        assert not (set(a.prefixes) & set(b.prefixes))

    def test_ibgp_full_mesh_configured(self, scenario):
        # every router lists every other loopback as a neighbor
        for spec in scenario.topology.nodes:
            others = len(scenario.topology) - 1
            assert spec.config.count("remote-as 65000") >= others or \
                spec.config.count("peer-as 65000") >= others


class TestRouteGenerators:
    def test_full_table_size_and_determinism(self):
        a = full_table(100, seed=1)
        b = full_table(100, seed=1)
        assert a == b and len(a) == 100

    def test_full_table_all_slash24(self):
        assert all(p.length == 24 for p in full_table(50))

    def test_different_seeds_disjoint(self):
        a = set(full_table(1000, seed=1))
        b = set(full_table(1000, seed=2))
        assert not (a & b)

    def test_scaled_timers_preserve_transfer_time(self):
        fast = scaled_timers(10_000)
        slow = scaled_timers(1_000)
        # Transfer time of the whole (scaled) table is invariant.
        assert 10_000 / fast.bgp_update_rate == pytest.approx(
            1_000 / slow.bgp_update_rate
        )


class TestBaggage:
    def test_variants_monotone(self):
        assert count_config_lines(baggage_lines(0)) < count_config_lines(
            baggage_lines(4)
        )

    def test_baggage_accepted_by_emulation(self):
        _, diagnostics = parse_arista_config(baggage_lines(4))
        assert diagnostics == []

    def test_baggage_fully_opaque_to_model(self):
        result = parse_with_model(baggage_lines(0))
        assert result.recognized_lines == 0


class TestRouteReflectorScenario:
    @pytest.fixture(scope="class")
    def scenario(self):
        return production_scenario(
            10, peers=1, routes_per_peer=100, route_reflectors=2, seed=4
        )

    def test_session_count_reduced(self, scenario):
        full_mesh = production_scenario(
            10, peers=1, routes_per_peer=100, seed=4
        )
        def sessions(sc):
            total = 0
            for spec in sc.topology.nodes:
                total += spec.config.count("remote-as 65000")
                total += spec.config.count("peer-as 65000")
            return total
        assert sessions(scenario) < sessions(full_mesh)

    def test_reflectors_mark_clients(self, scenario):
        ordered = sorted(s.name for s in scenario.topology.nodes)
        reflectors = ordered[:2]
        for spec in scenario.topology.nodes:
            if spec.name in reflectors:
                assert "route-reflector-client" in spec.config
            else:
                assert "route-reflector-client" not in spec.config

    def test_clients_peer_only_with_reflectors(self, scenario):
        ordered = sorted(s.name for s in scenario.topology.nodes)
        client = next(
            s for s in scenario.topology.nodes if s.name == ordered[5]
        )
        ibgp_lines = [
            l for l in client.config.splitlines()
            if "remote-as 65000" in l or "peer-as 65000" in l
        ]
        assert len(ibgp_lines) == 2

    def test_rr_scenario_converges_with_full_propagation(self, scenario):
        from repro.core.context import ScenarioContext
        from repro.core.pipeline import ModelFreeBackend
        from repro.protocols.timers import FAST_TIMERS

        backend = ModelFreeBackend(
            scenario.topology, timers=FAST_TIMERS, quiet_period=5.0
        )
        context = ScenarioContext(
            name="rr", injectors=tuple(scenario.injectors)
        )
        backend.run(context, seed=1)
        deployment = backend.last_run.deployment
        for router in deployment.routers.values():
            assert len(router.rib.fib) >= 100, router.name
