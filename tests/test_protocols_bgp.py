"""BGP session and propagation behaviour over the mini harness."""

from repro.net.addr import Prefix, parse_ipv4
from repro.rib.fib import FibAction
from repro.rib.route import Protocol

from tests.helpers import mini_net


def ebgp_pair(extra_r1="", extra_r2="", seed=0):
    """Two routers, two ASes, one shared /31."""
    r1 = f"""\
hostname r1
ip routing
interface Loopback0
   ip address 2.2.2.1/32
interface Ethernet1
   no switchport
   ip address 10.0.0.0/31
router bgp 65001
   router-id 2.2.2.1
   neighbor 10.0.0.1 remote-as 65002
   network 2.2.2.1/32
{extra_r1}"""
    r2 = f"""\
hostname r2
ip routing
interface Loopback0
   ip address 2.2.2.2/32
interface Ethernet1
   no switchport
   ip address 10.0.0.1/31
router bgp 65002
   router-id 2.2.2.2
   neighbor 10.0.0.0 remote-as 65001
   network 2.2.2.2/32
{extra_r2}"""
    net = mini_net(
        {"r1": r1, "r2": r2},
        [("r1", "Ethernet1", "r2", "Ethernet1")],
        seed=seed,
    )
    net.converge()
    return net


class TestEbgpSession:
    def test_session_establishes(self):
        net = ebgp_pair()
        for name in ("r1", "r2"):
            bgp = net.router(name).bgp
            assert all(s.is_established for s in bgp.sessions.values())

    def test_routes_exchanged(self):
        net = ebgp_pair()
        route = net.router("r1").rib.best(Prefix.parse("2.2.2.2/32"))
        assert route is not None
        assert route.protocol is Protocol.BGP_EXTERNAL

    def test_as_path_prepended(self):
        net = ebgp_pair()
        rib_in = net.router("r1").bgp.adj_rib_in[parse_ipv4("10.0.0.1")]
        attrs = rib_in[Prefix.parse("2.2.2.2/32")]
        assert attrs.as_path == (65002,)

    def test_next_hop_is_peer_interface(self):
        net = ebgp_pair()
        rib_in = net.router("r1").bgp.adj_rib_in[parse_ipv4("10.0.0.1")]
        attrs = rib_in[Prefix.parse("2.2.2.2/32")]
        assert attrs.next_hop == parse_ipv4("10.0.0.1")

    def test_fib_programs_bgp_route(self):
        net = ebgp_pair()
        entry = net.router("r1").rib.fib.lookup(parse_ipv4("2.2.2.2"))
        assert entry is not None and entry.action is FibAction.FORWARD
        assert entry.next_hops[0].interface == "Ethernet1"

    def test_wrong_remote_as_never_establishes(self):
        net = ebgp_pair(
            extra_r2="   neighbor 10.0.0.0 remote-as 65001\n"
        )  # r2 re-declares; last line wins in parser? keep original
        # Build an explicitly wrong pair instead.
        r1 = """\
hostname r1
ip routing
interface Ethernet1
   no switchport
   ip address 10.0.0.0/31
router bgp 65001
   neighbor 10.0.0.1 remote-as 65099
"""
        r2 = """\
hostname r2
ip routing
interface Ethernet1
   no switchport
   ip address 10.0.0.1/31
router bgp 65002
   neighbor 10.0.0.0 remote-as 65001
"""
        net = mini_net(
            {"r1": r1, "r2": r2}, [("r1", "Ethernet1", "r2", "Ethernet1")]
        )
        net.kernel.run(until=30.0, max_events=200_000)
        assert not any(
            s.is_established
            for s in net.router("r1").bgp.sessions.values()
        )

    def test_session_survives_keepalives(self):
        net = ebgp_pair()
        # Run well past several hold times with no config changes.
        net.kernel.run(until=net.kernel.now + 30.0, max_events=500_000)
        bgp = net.router("r1").bgp
        session = next(iter(bgp.sessions.values()))
        assert session.is_established
        assert session.stats.resets == 0


class TestLinkFailure:
    def test_session_drops_after_link_cut(self):
        net = ebgp_pair()
        net.link_down("r1", "Ethernet1", "r2", "Ethernet1")
        net.converge(quiet=5.0)
        r1 = net.router("r1")
        assert r1.rib.best(Prefix.parse("2.2.2.2/32")) is None

    def test_withdrawn_routes_after_holddown(self):
        net = ebgp_pair()
        net.link_down("r1", "Ethernet1", "r2", "Ethernet1")
        net.converge(quiet=5.0)
        session = next(iter(net.router("r1").bgp.sessions.values()))
        assert not session.is_established
        assert session.stats.resets >= 1


class TestIbgpOverIgp:
    def build(self):
        r1 = """\
hostname r1
ip routing
router isis default
   net 49.0001.0000.0000.0001.00
   address-family ipv4 unicast
interface Loopback0
   ip address 2.2.2.1/32
   isis enable default
   isis passive
interface Ethernet1
   no switchport
   ip address 10.0.0.0/31
   isis enable default
router bgp 65000
   router-id 2.2.2.1
   neighbor 2.2.2.3 remote-as 65000
   neighbor 2.2.2.3 update-source Loopback0
   network 2.2.2.1/32
"""
        r2 = """\
hostname r2
ip routing
router isis default
   net 49.0001.0000.0000.0002.00
   address-family ipv4 unicast
interface Loopback0
   ip address 2.2.2.2/32
   isis enable default
   isis passive
interface Ethernet1
   no switchport
   ip address 10.0.0.1/31
   isis enable default
interface Ethernet2
   no switchport
   ip address 10.0.1.0/31
   isis enable default
"""
        r3 = """\
hostname r3
ip routing
router isis default
   net 49.0001.0000.0000.0003.00
   address-family ipv4 unicast
interface Loopback0
   ip address 2.2.2.3/32
   isis enable default
   isis passive
interface Ethernet1
   no switchport
   ip address 10.0.1.1/31
   isis enable default
router bgp 65000
   router-id 2.2.2.3
   neighbor 2.2.2.1 remote-as 65000
   neighbor 2.2.2.1 update-source Loopback0
   network 2.2.2.3/32
"""
        net = mini_net(
            {"r1": r1, "r2": r2, "r3": r3},
            [
                ("r1", "Ethernet1", "r2", "Ethernet1"),
                ("r2", "Ethernet2", "r3", "Ethernet1"),
            ],
        )
        net.converge()
        return net

    def test_multihop_ibgp_establishes_via_igp(self):
        net = self.build()
        bgp = net.router("r1").bgp
        session = bgp.sessions[parse_ipv4("2.2.2.3")]
        assert session.is_established
        assert session.local_ip == parse_ipv4("2.2.2.1")

    def test_ibgp_route_installed_with_200_distance(self):
        net = self.build()
        # r1's network statement reaches r3 via the loopback session.
        routes = net.router("r3").rib.routes_for(Prefix.parse("2.2.2.1/32"))
        ibgp = [r for r in routes if r.protocol is Protocol.BGP_INTERNAL]
        assert ibgp and ibgp[0].effective_distance == 200

    def test_igp_still_preferred_in_fib(self):
        net = self.build()
        best = net.router("r3").rib.best(Prefix.parse("2.2.2.1/32"))
        assert best.protocol is Protocol.ISIS  # 115 < 200


class TestVendorQuirks:
    def test_community_crash_interop(self):
        """§2: unusual-but-valid advertisement crashes the peer parser."""
        r1 = """\
hostname r1
ip routing
interface Ethernet1
   no switchport
   ip address 10.0.0.0/31
ip prefix-list ALL seq 10 permit 0.0.0.0/0 le 32
route-map CHATTY permit 10
   match ip address prefix-list ALL
   set community 65001:1 65001:2 65001:3 65001:4 65001:5 65001:6 65001:7 65001:8 65001:9 65001:10 65001:11 65001:12
router bgp 65001
   neighbor 10.0.0.1 remote-as 65002
   neighbor 10.0.0.1 route-map CHATTY out
   neighbor 10.0.0.1 send-community
   network 10.0.0.0/31
"""
        r2 = """\
hostname r2
ip routing
interface Ethernet1
   no switchport
   ip address 10.0.0.1/31
router bgp 65002
   neighbor 10.0.0.0 remote-as 65001
"""
        net = mini_net(
            {"r1": r1, "r2": r2},
            [("r1", "Ethernet1", "r2", "Ethernet1")],
            os_versions={"r2": "23.10-parsecrash"},
            vendors={"r2": "nokia"},
        )
        # Nokia vendor can't parse EOS config — use nokia syntax.
        # (Rebuilt below with the right dialect.)
        r2_nokia = "\n".join(
            [
                "set / system name host-name r2",
                "set / interface ethernet-1/1 subinterface 0 ipv4 address 10.0.0.1/31",
                "set / network-instance default protocols bgp autonomous-system 65002",
                "set / network-instance default protocols bgp router-id 10.0.0.1",
                "set / network-instance default protocols bgp neighbor 10.0.0.0 peer-as 65001",
            ]
        )
        net = mini_net(
            {"r1": r1, "r2": r2_nokia},
            [("r1", "Ethernet1", "r2", "ethernet-1/1")],
            os_versions={"r2": "23.10-parsecrash"},
            vendors={"r2": "nokia"},
        )
        net.kernel.run(until=60.0, max_events=2_000_000)
        crashed = net.router("r2").bgp
        assert crashed.crash_count >= 1
        session = next(iter(crashed.sessions.values()))
        assert session.stats.resets >= 1

    def test_healthy_peer_accepts_many_communities(self):
        r1 = """\
hostname r1
ip routing
interface Ethernet1
   no switchport
   ip address 10.0.0.0/31
ip prefix-list ALL seq 10 permit 0.0.0.0/0 le 32
route-map CHATTY permit 10
   match ip address prefix-list ALL
   set community 65001:1 65001:2 65001:3 65001:4 65001:5 65001:6 65001:7 65001:8 65001:9 65001:10 65001:11 65001:12
router bgp 65001
   neighbor 10.0.0.1 remote-as 65002
   neighbor 10.0.0.1 route-map CHATTY out
   neighbor 10.0.0.1 send-community
   network 10.0.0.0/31
"""
        r2 = """\
hostname r2
ip routing
interface Ethernet1
   no switchport
   ip address 10.0.0.1/31
router bgp 65002
   neighbor 10.0.0.0 remote-as 65001
"""
        net = mini_net(
            {"r1": r1, "r2": r2}, [("r1", "Ethernet1", "r2", "Ethernet1")]
        )
        net.converge()
        healthy = net.router("r2").bgp
        assert healthy.crash_count == 0
        assert parse_ipv4("10.0.0.0") in healthy.adj_rib_in


class TestPolicy:
    def test_route_map_in_denies(self):
        extra = (
            "ip prefix-list BLOCK seq 10 permit 2.2.2.2/32\n"
            "route-map RM-IN deny 10\n"
            "   match ip address prefix-list BLOCK\n"
            "route-map RM-IN permit 20\n"
        )
        net = ebgp_pair(
            extra_r1="   neighbor 10.0.0.1 route-map RM-IN in\n" + extra
        )
        assert net.router("r1").rib.best(Prefix.parse("2.2.2.2/32")) is None

    def test_route_map_out_sets_med(self):
        extra = (
            "ip prefix-list ALL seq 10 permit 0.0.0.0/0 le 32\n"
            "route-map RM-OUT permit 10\n"
            "   match ip address prefix-list ALL\n"
            "   set metric 77\n"
        )
        net = ebgp_pair(
            extra_r2="   neighbor 10.0.0.0 route-map RM-OUT out\n" + extra
        )
        rib_in = net.router("r1").bgp.adj_rib_in[parse_ipv4("10.0.0.1")]
        attrs = rib_in[Prefix.parse("2.2.2.2/32")]
        assert attrs.med == 77

    def test_communities_stripped_without_send_community(self):
        extra = (
            "ip prefix-list ALL seq 10 permit 0.0.0.0/0 le 32\n"
            "route-map RM-OUT permit 10\n"
            "   match ip address prefix-list ALL\n"
            "   set community 65002:42\n"
        )
        net = ebgp_pair(
            extra_r2="   neighbor 10.0.0.0 route-map RM-OUT out\n" + extra
        )
        rib_in = net.router("r1").bgp.adj_rib_in[parse_ipv4("10.0.0.1")]
        attrs = rib_in[Prefix.parse("2.2.2.2/32")]
        assert attrs.communities == ()
