"""Model-based baseline tests: partial parser and IBDP-style model."""

import pytest

from repro.batfish_model.ibdp import run_model
from repro.batfish_model.issues import FIXED_ASSUMPTIONS, ModelAssumptions
from repro.batfish_model.parser import parse_with_model
from repro.corpus.fig3 import R1_CONFIG, R2_CONFIG, R3_CONFIG
from repro.net.addr import Prefix, parse_ipv4
from repro.verify.reachability import pairwise_matrix


class TestPartialParser:
    def test_counts_total_and_recognized(self):
        result = parse_with_model("hostname r1\nip routing\n")
        assert result.total_lines == 2
        assert result.recognized_lines == 2
        assert result.unrecognized_count == 0

    def test_daemon_stanza_unrecognized_with_body(self):
        result = parse_with_model(
            "daemon PowerManager\n   exec /usr/bin/PowerManager\n"
            "   no shutdown\n"
        )
        assert result.unrecognized_count == 3

    def test_management_stanza_unrecognized(self):
        result = parse_with_model(
            "management api gnmi\n   transport grpc default\n"
        )
        assert result.unrecognized_count == 2

    def test_mpls_unrecognized(self):
        result = parse_with_model(
            "mpls ip\nrouter traffic-engineering\n   rsvp\n"
        )
        assert result.unrecognized_count == 3

    def test_known_operational_lines_recognized(self):
        result = parse_with_model(
            "ntp server 10.0.0.1\nsnmp-server community public\n"
        )
        assert result.unrecognized_count == 0

    def test_comments_and_blanks_not_counted(self):
        result = parse_with_model("! comment\n\nhostname r1\n")
        assert result.total_lines == 1

    def test_coverage_fraction(self):
        result = parse_with_model("hostname r1\nmpls ip\n")
        assert result.coverage == 0.5


class TestModelIssue1:
    """Fig. 3 issue #1: order-sensitive switchport assumption."""

    def test_address_before_no_switchport_silently_dropped(self):
        result = parse_with_model(
            "interface Ethernet2\n"
            "   ip address 100.64.0.1/31\n"
            "   no switchport\n"
        )
        iface = result.device.interfaces["Ethernet2"]
        assert iface.address is None  # the dangerous silent drop
        # And crucially: the line was counted as recognized.
        assert result.unrecognized_count == 0

    def test_conventional_order_works(self):
        result = parse_with_model(
            "interface Ethernet2\n"
            "   no switchport\n"
            "   ip address 100.64.0.1/31\n"
        )
        iface = result.device.interfaces["Ethernet2"]
        assert iface.address == parse_ipv4("100.64.0.1")

    def test_fixed_assumptions_accept_either_order(self):
        result = parse_with_model(
            "interface Ethernet2\n"
            "   ip address 100.64.0.1/31\n"
            "   no switchport\n",
            FIXED_ASSUMPTIONS,
        )
        assert result.device.interfaces["Ethernet2"].address is not None


class TestModelIssue2:
    """Fig. 3 issue #2: `isis enable` rejected as invalid syntax."""

    def test_rejected_without_active_address(self):
        result = parse_with_model(
            "interface Ethernet2\n"
            "   ip address 100.64.0.1/31\n"
            "   no switchport\n"
            "   isis enable default\n"
        )
        assert result.device.interfaces["Ethernet2"].isis is None
        assert any(
            "invalid syntax" in u.reason for u in result.unrecognized
        )

    def test_accepted_with_active_address(self):
        result = parse_with_model(
            "interface Loopback0\n"
            "   ip address 2.2.2.1/32\n"
            "   isis enable default\n"
        )
        assert result.device.interfaces["Loopback0"].isis is not None


class TestIbdpModel:
    def configs(self):
        return {"r1": R1_CONFIG, "r2": R2_CONFIG, "r3": R3_CONFIG}

    def test_fig3_model_isolates_r1(self):
        run = run_model(self.configs())
        matrix = pairwise_matrix(run.dataplane)
        # The paper's observation: model drops R2 -> R1.
        assert matrix[("r2", "r1")] is False
        # R2 <-> R3 keep working in the model.
        assert matrix[("r2", "r3")] is True
        assert matrix[("r3", "r2")] is True

    def test_fig3_fixed_assumptions_full_mesh(self):
        run = run_model(self.configs(), FIXED_ASSUMPTIONS)
        matrix = pairwise_matrix(run.dataplane)
        assert all(matrix.values())

    def test_unrecognized_accounting_exposed(self):
        run = run_model(self.configs())
        counts = run.unrecognized_by_device()
        assert counts["r1"] == 1  # the isis enable on the IP-less iface
        assert counts["r2"] == 0

    def test_snapshots_same_format_as_emulation(self):
        run = run_model(self.configs())
        snap = run.snapshots["r2"]
        data = snap.to_dict()
        assert "network-instances" in data
        assert any(
            e["state"]["entry-type"] == "receive"
            for e in data["network-instances"]["network-instance"][0]["afts"][
                "ipv4-unicast"
            ]["ipv4-entry"]
        )

    def test_isis_metrics_in_model(self):
        run = run_model(self.configs(), FIXED_ASSUMPTIONS)
        # r3 reaches r1's loopback at 2 links + prefix metric = 30.
        # (The model and the emulation must agree on metric semantics.)
        dataplane = run.dataplane
        entry = dataplane.devices["r3"].lookup(parse_ipv4("2.2.2.1"))
        assert entry is not None and entry.entry_type == "forward"


class TestIbdpBgp:
    R_A = """\
hostname a
ip routing
interface Ethernet1
   no switchport
   ip address 10.0.0.0/31
router bgp 65001
   router-id 1.1.1.1
   neighbor 10.0.0.1 remote-as 65002
   network 10.0.0.0/31
interface Loopback0
   ip address 1.1.1.1/32
"""
    R_B = """\
hostname b
ip routing
interface Ethernet1
   no switchport
   ip address 10.0.0.1/31
interface Loopback0
   ip address 2.2.2.2/32
router bgp 65002
   router-id 2.2.2.2
   neighbor 10.0.0.0 remote-as 65001
   network 2.2.2.2/32
"""

    def test_ebgp_route_computed(self):
        run = run_model({"a": self.R_A, "b": self.R_B})
        entry = run.dataplane.devices["a"].lookup(parse_ipv4("2.2.2.2"))
        assert entry is not None and entry.entry_type == "forward"

    def test_network_statement_requires_rib_route(self):
        config = self.R_B.replace("network 2.2.2.2/32", "network 9.9.9.9/32")
        run = run_model({"a": self.R_A, "b": config})
        assert run.dataplane.devices["a"].lookup(parse_ipv4("9.9.9.9")) is None

    def test_session_requires_both_sides(self):
        one_sided = self.R_B.replace(
            "   neighbor 10.0.0.0 remote-as 65001\n", ""
        )
        run = run_model({"a": self.R_A, "b": one_sided})
        assert run.dataplane.devices["a"].lookup(parse_ipv4("2.2.2.2")) is None

    def test_as_mismatch_no_session(self):
        wrong = self.R_A.replace("remote-as 65002", "remote-as 65077")
        run = run_model({"a": wrong, "b": self.R_B})
        assert run.dataplane.devices["a"].lookup(parse_ipv4("2.2.2.2")) is None


class TestModelAcls:
    CONFIG = """\
hostname a
ip routing
ip access-list GUARD
   10 deny tcp any any eq 22
   20 permit ip any any
interface Ethernet1
   no switchport
   ip address 10.0.0.0/31
   ip access-group GUARD in
"""

    def test_model_parses_acls(self):
        result = parse_with_model(self.CONFIG)
        assert result.unrecognized_count == 0
        assert "GUARD" in result.device.acls
        assert result.device.interfaces["Ethernet1"].acl_in == "GUARD"

    def test_model_exports_acls_in_snapshot(self):
        run = run_model({"a": self.CONFIG})
        snapshot = run.snapshots["a"]
        assert "GUARD" in snapshot.acls
        iface = next(i for i in snapshot.interfaces if i.name == "Ethernet1")
        assert iface.acl_in == "GUARD"

    def test_unsupported_rule_counted(self):
        config = self.CONFIG.replace(
            "10 deny tcp any any eq 22", "10 deny gre any any"
        )
        result = parse_with_model(config)
        assert result.unrecognized_count == 1
