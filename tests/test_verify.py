"""Verification engine tests: reachability, differential, invariants."""

import pytest

from repro.dataplane.forwarding import Disposition
from repro.dataplane.model import Dataplane
from repro.net.addr import Prefix, parse_ipv4
from repro.net.headerspace import HeaderSpace
from repro.verify.differential import differential_reachability
from repro.verify.invariants import (
    detect_blackholes,
    detect_loops,
    verify_pairwise_reachability,
)
from repro.verify.reachability import ReachabilityAnalysis, pairwise_matrix
from repro.verify.traceroute import traceroute

from tests.test_dataplane import snapshot


@pytest.fixture
def healthy():
    a = snapshot(
        "a",
        [("eth0", "10.0.0.0/31"), ("lo", "1.1.1.1/32")],
        [
            ("2.2.2.2/32", [("eth0", "10.0.0.1")]),
            ("10.0.0.0/31", [("eth0", None)]),
        ],
        receives=["1.1.1.1/32", "10.0.0.0/32"],
    )
    b = snapshot(
        "b",
        [("eth0", "10.0.0.1/31"), ("lo", "2.2.2.2/32")],
        [
            ("1.1.1.1/32", [("eth0", "10.0.0.0")]),
            ("10.0.0.0/31", [("eth0", None)]),
        ],
        receives=["2.2.2.2/32", "10.0.0.1/32"],
    )
    return Dataplane.from_afts({"a": a, "b": b})


@pytest.fixture
def broken():
    """Same network but b lost its route to a's loopback."""
    a = snapshot(
        "a",
        [("eth0", "10.0.0.0/31"), ("lo", "1.1.1.1/32")],
        [
            ("2.2.2.2/32", [("eth0", "10.0.0.1")]),
            ("10.0.0.0/31", [("eth0", None)]),
        ],
        receives=["1.1.1.1/32", "10.0.0.0/32"],
    )
    b = snapshot(
        "b",
        [("eth0", "10.0.0.1/31"), ("lo", "2.2.2.2/32")],
        [("10.0.0.0/31", [("eth0", None)])],
        receives=["2.2.2.2/32", "10.0.0.1/32"],
    )
    return Dataplane.from_afts({"a": a, "b": b})


class TestReachabilityAnalysis:
    def test_exhaustive_partition(self, healthy):
        analysis = ReachabilityAnalysis(healthy)
        rows = analysis.analyze(["a"])
        covered = 0
        for row in rows:
            covered += len(row.dst_set)
        assert covered == 2**32

    def test_dst_space_restriction(self, healthy):
        analysis = ReachabilityAnalysis(healthy)
        space = HeaderSpace.dst_prefix(Prefix.parse("2.2.2.2/32"))
        rows = analysis.analyze(["a"], dst_space=space)
        assert len(rows) == 1
        assert rows[0].dispositions == {Disposition.ACCEPTED}

    def test_failures_filter(self, broken):
        analysis = ReachabilityAnalysis(broken)
        failures = analysis.failures(["b"])
        failed_dsts = set()
        for row in failures:
            failed_dsts.update(
                d for d in [parse_ipv4("1.1.1.1")] if d in row.dst_set
            )
        assert failed_dsts == {parse_ipv4("1.1.1.1")}

    def test_rows_merge_same_disposition(self, healthy):
        analysis = ReachabilityAnalysis(healthy)
        rows = analysis.analyze(["a"])
        keys = [row.dispositions for row in rows]
        assert len(keys) == len(set(keys))


class TestPairwise:
    def test_healthy_full_mesh(self, healthy):
        matrix = pairwise_matrix(healthy)
        assert all(matrix.values())
        assert verify_pairwise_reachability(healthy) == []

    def test_broken_detected(self, broken):
        violations = verify_pairwise_reachability(broken)
        assert [(v.src, v.dst) for v in violations] == [("b", "a")]


class TestTraceroute:
    def test_trace_hops(self, healthy):
        result = traceroute(healthy, "a", "2.2.2.2")
        assert result.traces[0].disposition is Disposition.ACCEPTED
        assert [h.device for h in result.traces[0].hops] == ["a", "b"]

    def test_accepts_int_destination(self, healthy):
        result = traceroute(healthy, "a", parse_ipv4("2.2.2.2"))
        assert result.success


class TestInvariants:
    def test_no_loops_in_healthy(self, healthy):
        assert detect_loops(healthy) == []

    def test_loop_detected(self):
        a = snapshot(
            "a", [("eth0", "10.0.0.0/31")],
            [("5.5.5.5/32", [("eth0", "10.0.0.1")])],
        )
        b = snapshot(
            "b", [("eth0", "10.0.0.1/31")],
            [("5.5.5.5/32", [("eth0", "10.0.0.0")])],
        )
        loops = detect_loops(Dataplane.from_afts({"a": a, "b": b}))
        assert loops
        assert all(
            Disposition.LOOP in row.dispositions for row in loops
        )

    def test_blackhole_detection_limited_to_owned_space(self, broken):
        rows = detect_blackholes(broken)
        assert rows  # b drops traffic to a's owned loopback
        assert any(parse_ipv4("1.1.1.1") in row.dst_set for row in rows)


class TestDifferential:
    def test_identical_snapshots_no_rows(self, healthy):
        assert differential_reachability(healthy, healthy) == []

    def test_regression_found(self, healthy, broken):
        rows = differential_reachability(healthy, broken)
        regressions = [row for row in rows if row.regressed]
        assert len(regressions) == 1
        row = regressions[0]
        assert row.ingress == "b"
        assert row.sample_destination == parse_ipv4("1.1.1.1")
        assert row.reference_dispositions == {Disposition.ACCEPTED}
        assert row.snapshot_dispositions == {Disposition.NO_ROUTE}

    def test_improvement_direction(self, healthy, broken):
        rows = differential_reachability(broken, healthy)
        assert any(row.improved for row in rows)
        assert not any(row.regressed for row in rows)

    def test_traces_attached(self, healthy, broken):
        row = differential_reachability(healthy, broken)[0]
        assert row.reference_traces and row.snapshot_traces

    def test_ingress_restriction(self, healthy, broken):
        rows = differential_reachability(
            healthy, broken, ingress_nodes=["a"]
        )
        assert rows == []

    def test_dst_space_restriction(self, healthy, broken):
        space = HeaderSpace.dst_prefix(Prefix.parse("9.0.0.0/8"))
        rows = differential_reachability(healthy, broken, dst_space=space)
        assert rows == []

    def test_disjoint_node_sets_compared_on_common(self, healthy):
        solo = Dataplane.from_afts(
            {
                "a": snapshot(
                    "a",
                    [("lo", "1.1.1.1/32")],
                    [],
                    receives=["1.1.1.1/32"],
                )
            }
        )
        rows = differential_reachability(healthy, solo)
        assert all(row.ingress == "a" for row in rows)
