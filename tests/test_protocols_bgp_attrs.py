"""BGP decision-process tests."""

from repro.net.addr import parse_ipv4
from repro.protocols.bgp_attrs import (
    BgpPath,
    Origin,
    PathAttributes,
    best_path,
    intern_attrs,
)


def path(
    *,
    local_pref=None,
    as_path=(65001,),
    origin=Origin.IGP,
    med=0,
    from_ebgp=True,
    next_hop="10.0.0.1",
    peer_ip="10.0.0.1",
    router_id=1,
    is_local=False,
):
    return BgpPath(
        attrs=PathAttributes(
            next_hop=parse_ipv4(next_hop),
            as_path=tuple(as_path),
            origin=origin,
            med=med,
            local_pref=local_pref,
        ),
        from_ebgp=from_ebgp,
        peer_ip=parse_ipv4(peer_ip),
        peer_router_id=router_id,
        is_local=is_local,
    )


def flat_metric(_next_hop):
    return 10


class TestDecisionSteps:
    def test_higher_local_pref_wins(self):
        lo = path(local_pref=100, as_path=(1,))
        hi = path(local_pref=200, as_path=(1, 2, 3), peer_ip="10.0.0.2")
        assert best_path([lo, hi], flat_metric) is hi

    def test_default_local_pref_is_100(self):
        default = path(local_pref=None)
        lower = path(local_pref=90, peer_ip="10.0.0.2")
        assert best_path([default, lower], flat_metric) is default

    def test_local_origination_beats_learned(self):
        learned = path(as_path=())
        originated = path(is_local=True, from_ebgp=False, as_path=(),
                          peer_ip="0.0.0.1")
        assert best_path([learned, originated], flat_metric) is originated

    def test_shorter_as_path_wins(self):
        short = path(as_path=(65001,))
        long = path(as_path=(65002, 65003), peer_ip="10.0.0.2")
        assert best_path([short, long], flat_metric) is short

    def test_lower_origin_wins(self):
        igp = path(origin=Origin.IGP)
        incomplete = path(origin=Origin.INCOMPLETE, peer_ip="10.0.0.2")
        assert best_path([incomplete, igp], flat_metric) is igp

    def test_lower_med_wins_same_first_as(self):
        cheap = path(med=10)
        pricey = path(med=50, peer_ip="10.0.0.2")
        assert best_path([pricey, cheap], flat_metric) is cheap

    def test_ebgp_beats_ibgp(self):
        external = path(from_ebgp=True)
        internal = path(from_ebgp=False, peer_ip="10.0.0.2")
        assert best_path([internal, external], flat_metric) is external

    def test_nearer_igp_next_hop_wins(self):
        near = path(from_ebgp=False, next_hop="10.0.0.1")
        far = path(from_ebgp=False, next_hop="10.0.0.2", peer_ip="10.0.0.2")

        def metric(next_hop):
            return 5 if next_hop == parse_ipv4("10.0.0.1") else 50

        assert best_path([far, near], metric) is near

    def test_metric_bug_quirk_inverts_choice(self):
        near = path(from_ebgp=False, next_hop="10.0.0.1")
        far = path(from_ebgp=False, next_hop="10.0.0.2", peer_ip="10.0.0.2")

        def metric(next_hop):
            return 5 if next_hop == parse_ipv4("10.0.0.1") else 50

        chosen = best_path(
            [far, near], metric, prefer_higher_igp_metric=True
        )
        assert chosen is far  # the §2 vendor regression

    def test_router_id_tiebreak(self):
        a = path(router_id=5)
        b = path(router_id=3, peer_ip="10.0.0.2")
        assert best_path([a, b], flat_metric) is b

    def test_peer_ip_final_tiebreak(self):
        a = path(peer_ip="10.0.0.9")
        b = path(peer_ip="10.0.0.2")
        assert best_path([a, b], flat_metric) is b


class TestEligibility:
    def test_unresolvable_next_hop_ineligible(self):
        unreachable = path(next_hop="10.0.0.1")
        assert best_path([unreachable], lambda _nh: None) is None

    def test_local_path_always_eligible(self):
        local = path(is_local=True)
        assert best_path([local], lambda _nh: None) is local

    def test_empty_input(self):
        assert best_path([], flat_metric) is None


class TestInterning:
    def test_equal_attrs_share_instance(self):
        a = intern_attrs(PathAttributes(next_hop=1, as_path=(65001,)))
        b = intern_attrs(PathAttributes(next_hop=1, as_path=(65001,)))
        assert a is b

    def test_different_attrs_distinct(self):
        a = intern_attrs(PathAttributes(next_hop=1))
        b = intern_attrs(PathAttributes(next_hop=2))
        assert a is not b

    def test_first_as(self):
        assert PathAttributes(next_hop=1, as_path=(7, 8)).first_as == 7
        assert PathAttributes(next_hop=1).first_as is None
