"""Tests for the metrics plane (repro.obs.metrics) and its surfaces.

Covers the registry itself (families, labels, histogram quantiles,
enable/disable), the Prometheus and JSONL exposition paths, trace-
context propagation (``job_scope``), the service counter migration,
the frontend ``{"op": "metrics"}`` surface, and the per-job waterfall.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.obs import bus, read_jsonl, tracing, write_jsonl
from repro.obs.export import (
    read_metrics_jsonl,
    write_metrics_jsonl,
)
from repro.obs.metrics import (
    DEFAULT,
    MetricsRegistry,
    WALL_BUCKETS,
    default_buckets,
    diff_records,
    enabled_from_env,
    exposition_format,
    render_prometheus,
)
from repro.obs.timeline import waterfall_text
from repro.service import Job, JobPriority, JobQueue, VerificationService
from repro.service.frontend import ServiceFrontend
from repro.service.workers import WorkerPool


class TestRegistry:
    def test_counter_unlabeled_and_labeled(self):
        registry = MetricsRegistry(enabled=True)
        registry.counter("hits").inc()
        registry.counter("hits").inc(2)
        lookups = registry.counter("lookups", labelnames=("result",))
        lookups.inc(result="hit")
        lookups.inc(3, result="miss")
        assert registry.counter("hits").value == 3
        assert registry.counter_values() == {
            "hits": 3,
            "lookups{result=hit}": 1,
            "lookups{result=miss}": 3,
        }

    def test_family_is_idempotent(self):
        registry = MetricsRegistry(enabled=True)
        first = registry.counter("x", "first help")
        second = registry.counter("x", "other help")
        assert first is second
        assert first.help == "first help"

    def test_label_schema_enforced(self):
        registry = MetricsRegistry(enabled=True)
        family = registry.counter("y", labelnames=("a",))
        with pytest.raises(ValueError, match="expected labels"):
            family.labels(b="1")

    def test_gauge_set_inc_dec(self):
        registry = MetricsRegistry(enabled=True)
        gauge = registry.gauge("depth")
        gauge.set(5)
        gauge.inc()
        gauge.dec(2)
        assert gauge.labels().value == 4

    def test_histogram_counts_and_quantiles(self):
        registry = MetricsRegistry(enabled=True)
        hist = registry.histogram("lat", buckets=(0.01, 0.1, 1.0))
        for value in (0.005, 0.005, 0.05, 0.5):
            hist.observe(value)
        child = hist.labels()
        assert child.count == 4
        assert child.counts == [2, 1, 1, 0]
        assert child.sum == pytest.approx(0.56)
        # Interpolated within the bucket the quantile lands in.
        assert 0.0 < child.quantile(0.25) <= 0.01
        assert 0.1 < child.quantile(0.99) <= 1.0

    def test_histogram_overflow_bucket_quantile(self):
        registry = MetricsRegistry(enabled=True)
        hist = registry.histogram("big", buckets=(1.0,))
        hist.observe(100.0)
        # No upper edge to interpolate toward: report the lower bound.
        assert hist.labels().quantile(0.99) == 1.0

    def test_sim_unit_picks_sim_buckets(self):
        registry = MetricsRegistry(enabled=True)
        wall = registry.histogram("w")
        sim = registry.histogram("s", unit="sim")
        assert wall.buckets == default_buckets("wall")
        assert sim.buckets == default_buckets("sim")
        assert wall.buckets != sim.buckets

    def test_disabled_registry_is_noop(self):
        registry = MetricsRegistry(enabled=False)
        family = registry.counter("ghost")
        family.inc(result="anything")  # label schema not even checked
        registry.histogram("ghost2").observe(1.0)
        assert registry.families() == []
        assert registry.series_count() == 0
        assert registry.counter_values() == {}
        assert registry.collect() == []

    def test_series_count(self):
        registry = MetricsRegistry(enabled=True)
        registry.counter("a").inc()
        hist = registry.histogram("b", labelnames=("p",))
        hist.observe(1.0, p="x")
        hist.observe(1.0, p="y")
        assert registry.series_count() == 3

    def test_env_knobs(self, monkeypatch):
        monkeypatch.setenv("MFV_METRICS_ENABLED", "0")
        assert not enabled_from_env()
        assert not MetricsRegistry().enabled
        monkeypatch.setenv("MFV_METRICS_ENABLED", "yes")
        assert enabled_from_env()
        monkeypatch.setenv("MFV_METRICS_BUCKETS", "0.5,0.25,1")
        assert default_buckets("wall") == (0.25, 0.5, 1.0)
        monkeypatch.setenv("MFV_METRICS_BUCKETS", "garbage")
        assert default_buckets("wall") == WALL_BUCKETS
        monkeypatch.setenv("MFV_METRICS_FORMAT", "json")
        assert exposition_format() == "records"
        monkeypatch.setenv("MFV_METRICS_FORMAT", "bogus")
        assert exposition_format() == "prometheus"

    def test_default_registry_exists_and_is_enabled_by_default(self):
        assert isinstance(DEFAULT, MetricsRegistry)


class TestPrometheusRendering:
    def test_counter_gauge_histogram_exposition(self):
        registry = MetricsRegistry(enabled=True)
        registry.counter("service.jobs_submitted", "Jobs accepted").inc(7)
        registry.gauge("service.queue_depth").set(3)
        hist = registry.histogram(
            "service.job_queue_seconds",
            labelnames=("priority",),
            buckets=(0.1, 1.0),
        )
        hist.observe(0.05, priority="interactive")
        hist.observe(5.0, priority="interactive")
        text = render_prometheus(registry)
        assert "# TYPE service_jobs_submitted_total counter" in text
        assert "service_jobs_submitted_total 7" in text
        assert "service_queue_depth 3" in text
        # Cumulative buckets ending at +Inf, plus _sum/_count.
        assert (
            'service_job_queue_seconds_bucket{le="0.1",priority="interactive"} 1'
            in text or
            'service_job_queue_seconds_bucket{priority="interactive",le="0.1"} 1'
            in text
        )
        assert 'le="+Inf"' in text
        assert "service_job_queue_seconds_count" in text
        assert "service_job_queue_seconds_sum" in text

    def test_label_value_escaping(self):
        registry = MetricsRegistry(enabled=True)
        registry.counter("c", labelnames=("msg",)).inc(msg='say "hi"\n')
        text = render_prometheus(registry)
        assert r"say \"hi\"\n" in text

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry(enabled=True)) == ""


class TestRecordsAndDiff:
    def _loaded(self) -> MetricsRegistry:
        registry = MetricsRegistry(enabled=True)
        registry.counter("c", labelnames=("k",)).inc(2, k="v")
        registry.gauge("g").set(1.5)
        registry.histogram("h", buckets=(1.0, 2.0)).observe(1.5)
        return registry

    def test_collect_round_trips_every_kind(self, tmp_path):
        registry = self._loaded()
        path = tmp_path / "metrics.jsonl"
        lines = write_metrics_jsonl(registry, path)
        assert lines == 3
        kinds = {
            json.loads(line)["kind"]
            for line in path.read_text().splitlines()
        }
        assert kinds == {"counter", "gauge", "histogram"}
        restored = read_metrics_jsonl(path)
        assert restored.collect() == registry.collect()

    def test_delta_export(self, tmp_path):
        registry = self._loaded()
        before = registry.collect()
        registry.counter("c", labelnames=("k",)).inc(3, k="v")
        registry.histogram("h", buckets=(1.0, 2.0)).observe(0.5)
        path = tmp_path / "delta.jsonl"
        lines = write_metrics_jsonl(registry, path, since=before)
        records = [
            json.loads(line) for line in path.read_text().splitlines()
        ]
        assert lines == 2  # the unchanged gauge is omitted
        by_kind = {r["kind"]: r for r in records}
        assert by_kind["counter"]["value"] == 3
        assert by_kind["histogram"]["count"] == 1
        assert by_kind["histogram"]["counts"] == [1, 0, 0]

    def test_diff_gauge_carries_level(self):
        registry = self._loaded()
        before = registry.collect()
        registry.gauge("g").set(9.0)
        delta = diff_records(before, registry.collect())
        assert delta == [{"kind": "gauge", "name": "g", "value": 9.0}]

    def test_malformed_metric_record_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "histogram", "buckets": []}\n')
        with pytest.raises(ValueError, match="malformed histogram"):
            read_jsonl(path)


class TestJobContext:
    def test_job_scope_tags_events_and_spans(self):
        with tracing() as tracer:
            with bus.job_scope(42, "interactive"):
                assert bus.current_job().job_id == 42
                tracer.emit("anything", 1.0)
                span = tracer.begin("work", 1.0)
                tracer.end(span, 2.0)
            assert bus.current_job() is None
        assert tracer.events[0].detail["job"] == 42
        assert span.attrs == {"job": 42}

    def test_metrics_registry_resolves_tracer_then_default(self):
        assert bus.metrics_registry() is DEFAULT
        with tracing() as tracer:
            assert bus.metrics_registry() is tracer.registry
            assert tracer.registry.enabled  # tracing is the opt-in
        assert bus.metrics_registry() is DEFAULT


class TestWorkerPoolConcurrency:
    def test_registry_survives_worker_hammering(self):
        """Many worker threads recording into one registry: every
        increment and observation lands exactly once."""
        registry = MetricsRegistry(enabled=True)
        jobs_n, incs_per_job = 40, 50

        def work(n):
            counter = registry.counter("hammer.count", labelnames=("lane",))
            hist = registry.histogram("hammer.lat", buckets=(0.5, 1.0))
            for i in range(incs_per_job):
                counter.inc(lane=str(n % 4))
                hist.observe((i % 3) * 0.4)
            return n

        queue = JobQueue(max_depth=jobs_n + 1)
        pool = WorkerPool(queue, workers=8, max_retries=0)
        jobs = []
        for n in range(jobs_n):
            job = Job(("hammer", n), (lambda n=n: work(n)),
                      priority=JobPriority.CAMPAIGN)
            queue.submit(job)
            jobs.append(job)
        pool.start()
        try:
            for job in jobs:
                job.result(timeout=10)
        finally:
            pool.stop()
        total = sum(registry.counter_values().values())
        assert total == jobs_n * incs_per_job
        child_counts = [
            c.count
            for c in registry.histogram("hammer.lat").children()
        ]
        assert sum(child_counts) == jobs_n * incs_per_job


@pytest.fixture()
def service():
    svc = VerificationService(workers=1, max_queue_depth=8)
    svc.start()
    yield svc
    svc.stop()


def _settle(condition, timeout=5.0):
    """Wait for post-settle bookkeeping (the on_done hook runs after
    the job's result is delivered to waiters)."""
    import time as _time

    deadline = _time.monotonic() + timeout
    while not condition():
        if _time.monotonic() > deadline:
            pytest.fail("on_done bookkeeping never settled")
        _time.sleep(0.005)


class TestServiceMetrics:
    def test_stats_namespaces_counters_with_aliases(self, service):
        service.submit_callable(lambda: 1, signature=("s1",)).result(5)
        _settle(lambda: service.counters["jobs_completed"] == 1)
        stats = service.stats()
        assert stats["counters"]["jobs_submitted"] == 1
        assert stats["counters"]["jobs_completed"] == 1
        # Deprecated flat aliases survive one release.
        assert stats["jobs_submitted"] == 1
        assert stats["jobs_completed"] == 1

    def test_counters_property_reads_registry(self, service):
        service.submit_callable(lambda: 1, signature=("c1",)).result(5)
        _settle(lambda: service.counters["jobs_completed"] == 1)
        values = service.metrics.counter_values()
        assert values["service.jobs_completed"] == 1

    def test_queue_and_run_histograms_by_priority(self, service):
        service.submit_callable(
            lambda: 1, signature=("h1",), priority=JobPriority.INTERACTIVE
        ).result(5)
        hist = service.metrics.histogram("service.job_queue_seconds")
        _settle(lambda: hist.labels(priority="interactive").count == 1)
        run = service.metrics.histogram("service.job_run_seconds")
        assert run.labels(priority="interactive").count == 1
        # Other priority classes are preregistered but untouched.
        assert hist.labels(priority="campaign").count == 0

    def test_frontend_metrics_op_prometheus(self, service):
        service.submit_callable(lambda: 1, signature=("m1",)).result(5)
        _settle(lambda: service.counters["jobs_completed"] == 1)
        frontend = ServiceFrontend(service)
        response, keep = frontend.handle({"op": "metrics"})
        assert keep and response["ok"]
        assert response["format"] == "prometheus"
        text = response["text"]
        # The acceptance surface: queue-wait and engine-build
        # histograms, with priority-class children preregistered.
        assert "service_job_queue_seconds_bucket" in text
        assert "verify_engine_build_seconds_bucket" in text
        for priority in ("interactive", "differential", "campaign"):
            assert f'priority="{priority}"' in text

    def test_frontend_metrics_op_records(self, service):
        frontend = ServiceFrontend(service)
        response, _ = frontend.handle(
            {"op": "metrics", "format": "records"}
        )
        assert response["ok"] and response["format"] == "records"
        kinds = {record["kind"] for record in response["records"]}
        assert kinds == {"counter", "gauge", "histogram"}
        response, _ = frontend.handle(
            {"op": "metrics", "format": "nonsense"}
        )
        assert not response["ok"]

    def test_service_metrics_stay_on_when_plane_disabled(self, monkeypatch):
        """Counters are part of the stats API, so the service falls
        back to a private registry when the default plane is off."""
        monkeypatch.setenv("MFV_METRICS_ENABLED", "0")
        svc = VerificationService(workers=1)
        svc.start()
        try:
            svc.submit_callable(lambda: 1, signature=("off",)).result(5)
            _settle(lambda: svc.counters["jobs_completed"] == 1)
            assert svc.metrics.enabled
        finally:
            svc.stop()


class TestWaterfall:
    def _traced_job(self, tmp_path):
        with tracing() as tracer:
            with VerificationService(workers=1) as svc:
                job = svc.submit_callable(lambda: "ok", signature=("w",))
                job.result(timeout=5)
        path = tmp_path / "trace.jsonl"
        write_jsonl(tracer, path)
        return path, job.id

    def test_waterfall_renders_lifecycle(self, tmp_path):
        path, job_id = self._traced_job(tmp_path)
        text = waterfall_text(read_jsonl(path), job_id)
        assert f"Job {job_id} waterfall" in text
        assert "queued" in text
        assert "running" in text
        assert "done" in text
        assert "total" in text and "attempts 1" in text

    def test_waterfall_unknown_job_raises(self, tmp_path):
        path, job_id = self._traced_job(tmp_path)
        with pytest.raises(KeyError):
            waterfall_text(read_jsonl(path), job_id + 999)

    def test_waterfall_cli(self, tmp_path, capsys):
        from repro.cli import main

        path, job_id = self._traced_job(tmp_path)
        assert main(["obs", "waterfall", str(path), str(job_id)]) == 0
        out = capsys.readouterr().out
        assert "waterfall" in out
        assert main(["obs", "waterfall", str(path), "424242"]) == 2

    def test_metrics_cli(self, tmp_path, capsys):
        from repro.cli import main

        path, _ = self._traced_job(tmp_path)
        assert main(["obs", "metrics", str(path)]) == 0
        out = capsys.readouterr().out
        assert "# TYPE" in out
        assert main(
            ["obs", "metrics", str(path), "--format", "records"]
        ) == 0
        out = capsys.readouterr().out
        first = json.loads(out.splitlines()[0])
        assert first["kind"] in ("counter", "gauge", "histogram")
