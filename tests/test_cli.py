"""CLI tests (via the main() entry point, capturing stdout)."""

import pytest

from repro.cli import main
from repro.corpus.fig3 import fig3_scenario
from repro.topo.parser import format_topology


@pytest.fixture()
def topology_dir(tmp_path):
    scenario = fig3_scenario()
    for name, config in scenario.configs.items():
        (tmp_path / f"{name}.cfg").write_text(config)
    text = format_topology(scenario.topology)
    # Reference the config files the KNE way.
    lines = []
    for line in text.splitlines():
        lines.append(line)
        if line.strip().startswith('name: "r'):
            node = line.split('"')[1]
            lines.append(f'  config_file: "{node}.cfg"')
    (tmp_path / "topo.pb.txt").write_text("\n".join(lines))
    return tmp_path


class TestVerify:
    def test_verify_emulation_and_save(self, topology_dir, capsys):
        snap_path = topology_dir / "snap.json"
        code = main(
            [
                "verify",
                str(topology_dir / "topo.pb.txt"),
                "--quiet-period", "5.0",
                "--save", str(snap_path),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "PASS" in out
        assert snap_path.exists()

    def test_verify_model_backend_warns(self, topology_dir, capsys):
        code = main(
            [
                "verify",
                str(topology_dir / "topo.pb.txt"),
                "--backend", "model",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "model failed to parse" in out
        assert "FAIL" in out  # the Fig. 3 model defect shows up


class TestOfflineQueries:
    @pytest.fixture()
    def snapshot_path(self, topology_dir):
        path = topology_dir / "snap.json"
        main(
            [
                "verify", str(topology_dir / "topo.pb.txt"),
                "--quiet-period", "5.0", "--save", str(path),
            ]
        )
        return path

    def test_trace(self, snapshot_path, capsys):
        code = main(["trace", str(snapshot_path), "r3", "2.2.2.1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "accepted" in out

    def test_routes(self, snapshot_path, capsys):
        code = main(["routes", str(snapshot_path), "r2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "2.2.2.1/32" in out

    def test_diff_same_snapshot_clean(self, snapshot_path, capsys):
        code = main(["diff", str(snapshot_path), str(snapshot_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "(no rows)" in out

    def test_diff_delta_stats_identical_content(self, snapshot_path, capsys):
        # Identical content shares one engine — there is no delta to
        # apply, and the block must say so rather than invent stats.
        code = main(
            ["diff", str(snapshot_path), str(snapshot_path), "--delta-stats"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "delta stats:" in out
        assert "cold build" in out


class TestDemo:
    def test_demo_fig3(self, capsys):
        code = main(["demo", "fig3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "differentialReachability" in out


class TestObs:
    def test_verify_trace_writes_jsonl(self, topology_dir, capsys):
        trace_path = topology_dir / "run.jsonl"
        code = main(
            [
                "verify",
                str(topology_dir / "topo.pb.txt"),
                "--quiet-period", "5.0",
                "--trace", str(trace_path),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert f"trace written to {trace_path}" in out
        assert trace_path.exists()
        # The file is valid JSONL and feeds obs summary.
        code = main(["obs", "summary", str(trace_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "Phases:" in out
        assert "deploy" in out and "verify" in out
        assert "Counters:" in out
        assert "Last route installed" in out

    def test_obs_timeline_scenario(self, capsys):
        code = main(["obs", "timeline", "--scenario", "fig3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Phases:" in out
        assert "deploy" in out and "converge" in out and "verify" in out
        assert "adj-up" in out and "last-route" in out
        for node in ("r1", "r2", "r3"):
            assert node in out
        assert "kernel.dispatch" in out
        assert "Total events recorded" in out
        assert "Verification:" in out

    def test_obs_timeline_topology_file_with_trace(
        self, topology_dir, capsys
    ):
        trace_path = topology_dir / "timeline.jsonl"
        code = main(
            [
                "obs", "timeline",
                "--topology", str(topology_dir / "topo.pb.txt"),
                "--trace", str(trace_path),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert trace_path.exists()
        assert "trace written to" in out

    def test_obs_summary_missing_kind_errors(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"kind": "nope"}\n')
        with pytest.raises(ValueError):
            main(["obs", "summary", str(bad)])

    def test_verbose_flag_accepted(self, topology_dir, capsys):
        code = main(
            [
                "-v",
                "verify",
                str(topology_dir / "topo.pb.txt"),
                "--quiet-period", "5.0",
            ]
        )
        assert code == 0
        assert "PASS" in capsys.readouterr().out
