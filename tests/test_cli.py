"""CLI tests (via the main() entry point, capturing stdout)."""

import pytest

from repro.cli import main
from repro.corpus.fig3 import fig3_scenario
from repro.topo.parser import format_topology


@pytest.fixture()
def topology_dir(tmp_path):
    scenario = fig3_scenario()
    for name, config in scenario.configs.items():
        (tmp_path / f"{name}.cfg").write_text(config)
    text = format_topology(scenario.topology)
    # Reference the config files the KNE way.
    lines = []
    for line in text.splitlines():
        lines.append(line)
        if line.strip().startswith('name: "r'):
            node = line.split('"')[1]
            lines.append(f'  config_file: "{node}.cfg"')
    (tmp_path / "topo.pb.txt").write_text("\n".join(lines))
    return tmp_path


class TestVerify:
    def test_verify_emulation_and_save(self, topology_dir, capsys):
        snap_path = topology_dir / "snap.json"
        code = main(
            [
                "verify",
                str(topology_dir / "topo.pb.txt"),
                "--quiet-period", "5.0",
                "--save", str(snap_path),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "PASS" in out
        assert snap_path.exists()

    def test_verify_model_backend_warns(self, topology_dir, capsys):
        code = main(
            [
                "verify",
                str(topology_dir / "topo.pb.txt"),
                "--backend", "model",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "model failed to parse" in out
        assert "FAIL" in out  # the Fig. 3 model defect shows up


class TestOfflineQueries:
    @pytest.fixture()
    def snapshot_path(self, topology_dir):
        path = topology_dir / "snap.json"
        main(
            [
                "verify", str(topology_dir / "topo.pb.txt"),
                "--quiet-period", "5.0", "--save", str(path),
            ]
        )
        return path

    def test_trace(self, snapshot_path, capsys):
        code = main(["trace", str(snapshot_path), "r3", "2.2.2.1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "accepted" in out

    def test_routes(self, snapshot_path, capsys):
        code = main(["routes", str(snapshot_path), "r2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "2.2.2.1/32" in out

    def test_diff_same_snapshot_clean(self, snapshot_path, capsys):
        code = main(["diff", str(snapshot_path), str(snapshot_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "(no rows)" in out


class TestDemo:
    def test_demo_fig3(self, capsys):
        code = main(["demo", "fig3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "differentialReachability" in out
