"""Atom-graph engine tests.

The load-bearing property: for every (ingress, atom) pair on every
shipped corpus, the engine's disposition set is identical to the scalar
:class:`ForwardingWalk` oracle's. Everything else — verdict tables,
decision-vector sharing, the content-keyed cache, parallel precompute,
ACL taint fallback — is tested against that same oracle or against the
legacy evaluation paths it replaced.
"""

from __future__ import annotations

import pytest

from repro.core.context import ScenarioContext, single_link_cut_contexts
from repro.core.multirun import explore_nondeterminism
from repro.core.pipeline import ModelFreeBackend
from repro.corpus.production import production_scenario, scaled_timers
from repro.dataplane.forwarding import Disposition, ForwardingWalk
from repro.dataplane.model import Dataplane
from repro.gnmi.aft import (
    AftInterface,
    AftIpv4Entry,
    AftNextHop,
    AftNextHopGroup,
    AftSnapshot,
)
from repro.device.acl import AclRule
from repro.net.addr import Prefix, parse_ipv4
from repro.net.headerspace import HeaderSpace
from repro.net.intervals import IntervalSet
from repro.obs import tracing
from repro.protocols.timers import FAST_TIMERS
from repro.verify.engine import (
    AtomGraphEngine,
    clear_engine_cache,
    engine_for,
)
from repro.verify.reachability import (
    ReachabilityAnalysis,
    ReachabilityRow,
    pairwise_matrix,
)


def assert_engine_matches_walker(dataplane: Dataplane) -> None:
    """The property: engine dispositions == scalar-walk dispositions
    for every ingress over every destination atom."""
    engine = AtomGraphEngine(dataplane)
    walker = ForwardingWalk(dataplane)
    engine.precompute()
    for ingress in dataplane.node_names():
        for index, atom in enumerate(engine.atoms):
            expected = walker.walk(ingress, atom.sample()).dispositions
            assert engine.dispositions(ingress, index) == expected, (
                f"ingress={ingress} atom={atom}"
            )


@pytest.fixture(scope="module")
def production_snapshot():
    scenario = production_scenario(8, peers=1, routes_per_peer=80, seed=7)
    backend = ModelFreeBackend(
        scenario.topology, timers=scaled_timers(80), quiet_period=30.0
    )
    return backend.run(
        ScenarioContext(name="prod", injectors=tuple(scenario.injectors))
    )


class TestOracleEquivalence:
    def test_fig2_healthy_and_buggy(self, fig2_snapshots):
        healthy, buggy = fig2_snapshots
        assert_engine_matches_walker(healthy.dataplane)
        assert_engine_matches_walker(buggy.dataplane)

    def test_fig3_emulated(self, fig3_emulated):
        _, snapshot = fig3_emulated
        assert_engine_matches_walker(snapshot.dataplane)

    def test_fig3_model(self, fig3_model):
        _, snapshot = fig3_model
        assert_engine_matches_walker(snapshot.dataplane)

    def test_production_corpus(self, production_snapshot):
        assert_engine_matches_walker(production_snapshot.dataplane)

    def test_link_cut_context(self, fig2):
        context = next(single_link_cut_contexts(fig2.topology))
        backend = ModelFreeBackend(
            fig2.topology, timers=FAST_TIMERS, quiet_period=5.0
        )
        snapshot = backend.run(context)
        assert_engine_matches_walker(snapshot.dataplane)

    def test_analysis_rows_match_scalar_path(self, fig2_snapshots):
        healthy, _ = fig2_snapshots
        dataplane = healthy.dataplane
        fast = ReachabilityAnalysis(dataplane).analyze()
        slow = ReachabilityAnalysis(dataplane, use_engine=False).analyze()
        key = lambda rows: {
            (r.ingress, r.dispositions): r.dst_set for r in rows
        }
        assert key(fast) == key(slow)

    def test_analysis_respects_dst_restriction(self, fig2_snapshots):
        healthy, _ = fig2_snapshots
        dataplane = healthy.dataplane
        space = HeaderSpace.dst_prefix(Prefix.parse("10.0.0.0/8"))
        fast = ReachabilityAnalysis(dataplane).analyze(dst_space=space)
        slow = ReachabilityAnalysis(dataplane, use_engine=False).analyze(
            dst_space=space
        )
        key = lambda rows: {
            (r.ingress, r.dispositions): r.dst_set for r in rows
        }
        assert key(fast) == key(slow)

    def test_pairwise_matrix_matches_legacy(
        self, fig2_snapshots, production_snapshot
    ):
        for snapshot in (*fig2_snapshots, production_snapshot):
            dataplane = snapshot.dataplane
            assert pairwise_matrix(dataplane) == pairwise_matrix(
                dataplane, use_engine=False
            )


class TestParallelPrecompute:
    def test_worker_pool_matches_sequential(self, production_snapshot):
        dataplane = production_snapshot.dataplane
        sequential = AtomGraphEngine(dataplane)
        sequential.precompute()
        parallel = AtomGraphEngine(dataplane)
        parallel.precompute(workers=2)
        assert parallel._complete
        for index in range(len(sequential.atoms)):
            for ingress in dataplane.node_names():
                assert sequential.verdict(ingress, index) == parallel.verdict(
                    ingress, index
                )


def _acl_line_dataplane() -> Dataplane:
    """a -> b -> c where b filters on its ingress interface: traffic to
    c's loopback is only permitted for one source prefix, so b's node
    behaviour is not a function of the destination atom alone."""

    def iface(name, cidr, acl_in=None):
        address, _, length = cidr.partition("/")
        return AftInterface(
            name=name,
            ipv4_address=address,
            prefix_length=int(length),
            enabled=True,
            acl_in=acl_in,
        )

    a = AftSnapshot(device="a")
    a.interfaces = [iface("eth0", "10.0.0.0/31"), iface("lo", "1.1.1.1/32")]
    a.next_hops[1] = AftNextHop(index=1, interface="eth0", ip_address="10.0.0.1")
    a.next_hop_groups[1] = AftNextHopGroup(group_id=1, next_hop_indices=(1,))
    a.entries = [
        AftIpv4Entry(prefix="3.3.3.3/32", entry_type="forward", next_hop_group=1),
        AftIpv4Entry(prefix="1.1.1.1/32", entry_type="receive"),
    ]

    b = AftSnapshot(device="b")
    b.interfaces = [
        iface("eth0", "10.0.0.1/31", acl_in="FILTER"),
        iface("eth1", "10.0.1.0/31"),
        iface("lo", "2.2.2.2/32"),
    ]
    b.acls = {
        "FILTER": (
            AclRule(seq=10, permit=True, src=Prefix.parse("1.1.1.1/32")),
            AclRule(seq=20, permit=False),
        )
    }
    b.next_hops[1] = AftNextHop(index=1, interface="eth1", ip_address="10.0.1.1")
    b.next_hop_groups[1] = AftNextHopGroup(group_id=1, next_hop_indices=(1,))
    b.entries = [
        AftIpv4Entry(prefix="3.3.3.3/32", entry_type="forward", next_hop_group=1),
        AftIpv4Entry(prefix="2.2.2.2/32", entry_type="receive"),
    ]

    c = AftSnapshot(device="c")
    c.interfaces = [iface("eth0", "10.0.1.1/31"), iface("lo", "3.3.3.3/32")]
    c.entries = [AftIpv4Entry(prefix="3.3.3.3/32", entry_type="receive")]

    return Dataplane.from_afts({"a": a, "b": b, "c": c})


class TestAclTaint:
    def test_paths_through_acl_device_are_tainted(self):
        dataplane = _acl_line_dataplane()
        engine = AtomGraphEngine(dataplane)
        target = engine.atom_index_of(parse_ipv4("3.3.3.3"))
        assert engine.verdict("a", target).tainted
        # The ACL device itself is tainted; a node that never reaches it
        # is not.
        assert engine.verdict("b", target).tainted
        assert not engine.verdict("c", target).tainted

    def test_tainted_dispositions_fall_back_to_walker(self):
        dataplane = _acl_line_dataplane()
        engine = AtomGraphEngine(dataplane)
        walker = ForwardingWalk(dataplane)
        for ingress in dataplane.node_names():
            for index, atom in enumerate(engine.atoms):
                expected = walker.walk(ingress, atom.sample()).dispositions
                assert engine.dispositions(ingress, index) == expected

    def test_tainted_pairwise_matches_legacy(self):
        dataplane = _acl_line_dataplane()
        assert pairwise_matrix(dataplane) == pairwise_matrix(
            dataplane, use_engine=False
        )


class TestEngineCache:
    def test_same_content_shares_engine(self, fig2_snapshots):
        healthy, _ = fig2_snapshots
        clear_engine_cache()
        with tracing() as tracer:
            first = engine_for(healthy.dataplane)
            second = engine_for(healthy.dataplane)
        assert first is second
        assert tracer.counters["verify.engine_cache_hits"] == 1
        assert tracer.counters["verify.engine_builds"] == 1
        clear_engine_cache()

    def test_miss_counter_increments_per_build(self, fig2_snapshots):
        healthy, buggy = fig2_snapshots
        clear_engine_cache()
        with tracing() as tracer:
            engine_for(healthy.dataplane)
            engine_for(buggy.dataplane)
            engine_for(healthy.dataplane)
        assert tracer.counters["verify.engine_cache_misses"] == 2
        assert tracer.counters["verify.engine_cache_hits"] == 1
        assert tracer.counters["verify.engine_builds"] == 2
        clear_engine_cache()

    def test_eviction_counter_with_env_limit(
        self, fig3_emulated, fig3_model, monkeypatch
    ):
        """MFV_ENGINE_CACHE=1 keeps one engine resident: the second
        distinct dataplane evicts the first, and re-requesting the first
        is a rebuild, not a hit."""
        monkeypatch.setenv("MFV_ENGINE_CACHE", "1")
        emulated = fig3_emulated[1].dataplane
        model = fig3_model[1].dataplane
        clear_engine_cache()
        with tracing() as tracer:
            first = engine_for(emulated)
            engine_for(model)
            again = engine_for(emulated)
        assert tracer.counters["verify.engine_cache_evictions"] == 2
        assert tracer.counters["verify.engine_builds"] == 3
        assert "verify.engine_cache_hits" not in tracer.counters
        assert again is not first
        clear_engine_cache()

    def test_bad_env_limit_falls_back_to_default(
        self, fig2_snapshots, monkeypatch
    ):
        monkeypatch.setenv("MFV_ENGINE_CACHE", "not-a-number")
        healthy, _ = fig2_snapshots
        clear_engine_cache()
        with tracing() as tracer:
            first = engine_for(healthy.dataplane)
            second = engine_for(healthy.dataplane)
        assert first is second
        assert tracer.counters["verify.engine_cache_hits"] == 1
        clear_engine_cache()

    def test_node_cache_keys_by_entry_content(self, fig2_snapshots):
        """Two distinct-but-equal ForwardingEntry objects must share one
        node-cache slot (content keying); id() keying would give two —
        and, worse, could alias different entries after GC recycling."""
        from repro.dataplane.model import ForwardingEntry, ResolvedHop

        healthy, _ = fig2_snapshots
        engine = AtomGraphEngine(healthy.dataplane)
        name = next(iter(healthy.dataplane.devices))
        entry_a = ForwardingEntry(
            prefix=Prefix.parse("2.2.2.1/32"),
            entry_type="receive",
            hops=(),
        )
        entry_b = ForwardingEntry(
            prefix=Prefix.parse("2.2.2.1/32"),
            entry_type="receive",
            hops=(ResolvedHop(interface="lo", gateway=None),),
        )
        entry_a_clone = ForwardingEntry(
            prefix=Prefix.parse("2.2.2.1/32"),
            entry_type="receive",
            hops=(),
        )
        assert entry_a_clone is not entry_a
        rep = parse_ipv4("2.2.2.1")
        engine._node_cache.clear()

        def slots_used():
            return sum(len(sub) for sub in engine._node_cache.values())

        engine._resolve_node(name, entry_a, rep)
        slots = slots_used()
        engine._resolve_node(name, entry_a_clone, rep)
        assert slots_used() == slots  # shared, not duplicated
        engine._resolve_node(name, entry_b, rep)
        assert slots_used() == slots + 1  # different content

    def test_multirun_builds_n_engines_not_n_squared(self, fig3):
        backend = ModelFreeBackend(
            fig3.topology, timers=FAST_TIMERS, quiet_period=5.0
        )
        clear_engine_cache()
        seeds = (0, 1, 2)
        with tracing() as tracer:
            result = explore_nondeterminism(backend, seeds=seeds)
        # 3 pairwise diffs over 3 snapshots: at most one engine build per
        # distinct converged state (seeds agreeing share even that), never
        # one per comparison side. Identical-fingerprint pairs skip the
        # differential entirely, so a deterministic sweep can build zero.
        assert len(result.snapshots) == len(seeds)
        builds = tracer.counters.get("verify.engine_builds", 0)
        pairs = len(seeds) * (len(seeds) - 1) // 2
        assert builds <= len(seeds) < 2 * pairs
        clear_engine_cache()


class TestRowFormatting:
    def _row(self, dst_set):
        return ReachabilityRow(
            ingress="r1",
            dst_set=dst_set,
            dispositions=frozenset({Disposition.ACCEPTED}),
            sample_destination=dst_set.min(),
            sample_traces=(),
        )

    def test_singleton_has_no_suffix(self):
        row = self._row(IntervalSet.of(parse_ipv4("1.1.1.1")))
        assert str(row) == "r1 -> 1.1.1.1: accepted"

    def test_suffix_counts_remaining_addresses(self):
        dst = IntervalSet.span(parse_ipv4("10.0.0.0"), parse_ipv4("10.0.0.3"))
        row = self._row(dst)
        # Four addresses total: the sample plus three more.
        assert "(+3 more addresses)" in str(row)
