"""Tests for the discrete-event kernel."""

import pytest

from repro.sim.kernel import QuiescenceTimeout, SimKernel, SimulationError


class TestScheduling:
    def test_runs_in_time_order(self):
        kernel = SimKernel()
        order = []
        kernel.schedule(3.0, lambda: order.append("c"))
        kernel.schedule(1.0, lambda: order.append("a"))
        kernel.schedule(2.0, lambda: order.append("b"))
        kernel.run()
        assert order == ["a", "b", "c"]

    def test_clock_advances_to_event_time(self):
        kernel = SimKernel()
        seen = []
        kernel.schedule(5.0, lambda: seen.append(kernel.now))
        kernel.run()
        assert seen == [5.0]
        assert kernel.now == 5.0

    def test_equal_time_priority_order(self):
        kernel = SimKernel()
        order = []
        kernel.schedule(1.0, lambda: order.append("low"), priority=5)
        kernel.schedule(1.0, lambda: order.append("high"), priority=1)
        kernel.run()
        assert order == ["high", "low"]

    def test_equal_time_insertion_order(self):
        kernel = SimKernel()
        order = []
        for i in range(5):
            kernel.schedule(1.0, lambda i=i: order.append(i))
        kernel.run()
        assert order == [0, 1, 2, 3, 4]

    def test_negative_delay_rejected(self):
        kernel = SimKernel()
        with pytest.raises(SimulationError):
            kernel.schedule(-1.0, lambda: None)

    def test_schedule_from_handler(self):
        kernel = SimKernel()
        times = []

        def chain():
            times.append(kernel.now)
            if len(times) < 3:
                kernel.schedule(1.0, chain)

        kernel.schedule(1.0, chain)
        kernel.run()
        assert times == [1.0, 2.0, 3.0]

    def test_schedule_at_absolute(self):
        kernel = SimKernel()
        seen = []
        kernel.schedule(1.0, lambda: kernel.schedule_at(10.0, lambda: seen.append(kernel.now)))
        kernel.run()
        assert seen == [10.0]


class TestCancel:
    def test_cancelled_event_skipped(self):
        kernel = SimKernel()
        seen = []
        event = kernel.schedule(1.0, lambda: seen.append("x"))
        event.cancel()
        kernel.run()
        assert seen == []

    def test_pending_counts_live_only(self):
        kernel = SimKernel()
        keep = kernel.schedule(1.0, lambda: None)
        drop = kernel.schedule(2.0, lambda: None)
        drop.cancel()
        del keep
        assert kernel.pending() == 1

    def test_cancel_from_handler_at_same_time(self):
        # A handler may cancel a peer already due at the same timestamp;
        # the peer must be skipped even though it was enqueued first in
        # the equal-time ordering behind the canceller.
        kernel = SimKernel()
        seen = []
        victim = kernel.schedule(
            1.0, lambda: seen.append("victim"), priority=5
        )
        kernel.schedule(1.0, victim.cancel, priority=1)
        kernel.schedule(1.0, lambda: seen.append("after"), priority=9)
        kernel.run()
        assert seen == ["after"]

    def test_cancelled_events_not_counted_as_processed(self):
        kernel = SimKernel()
        for _ in range(3):
            kernel.schedule(1.0, lambda: None).cancel()
        kernel.schedule(2.0, lambda: None)
        kernel.run()
        assert kernel.events_processed == 1

    def test_step_skips_cancelled_head(self):
        kernel = SimKernel()
        kernel.schedule(1.0, lambda: None).cancel()
        live = kernel.schedule(2.0, lambda: None)
        assert kernel.step() is live
        assert kernel.now == 2.0
        assert kernel.step() is None

    def test_cancel_after_firing_is_harmless(self):
        kernel = SimKernel()
        seen = []
        event = kernel.schedule(1.0, lambda: seen.append("x"))
        kernel.run()
        event.cancel()
        assert seen == ["x"]
        assert kernel.pending() == 0

    def test_run_until_quiet_skips_cancelled_events(self):
        kernel = SimKernel()
        seen = []

        def forever():
            seen.append(kernel.now)
            kernel.schedule(1.0, forever)

        kernel.schedule(1.0, lambda: seen.append("once"))
        # A would-be-infinite chain, cancelled before the run: quiet
        # detection must not count the dead event as activity.
        kernel.schedule(1.0, forever).cancel()
        end = kernel.run_until_quiet(3.0)
        assert seen == ["once"]
        # Quiet since t=0 with the default poll: the cancelled chain
        # contributes no activity, so the window closes at t=3.
        assert end == pytest.approx(3.0)


class TestEqualTimeOrdering:
    def test_priority_then_insertion(self):
        # Equal-time events sort by priority first, then by insertion
        # sequence within a priority level.
        kernel = SimKernel()
        order = []
        kernel.schedule(1.0, lambda: order.append("b0"), priority=2)
        kernel.schedule(1.0, lambda: order.append("a0"), priority=1)
        kernel.schedule(1.0, lambda: order.append("b1"), priority=2)
        kernel.schedule(1.0, lambda: order.append("a1"), priority=1)
        kernel.run()
        assert order == ["a0", "a1", "b0", "b1"]

    def test_negative_priority_runs_first(self):
        kernel = SimKernel()
        order = []
        kernel.schedule(1.0, lambda: order.append("default"))
        kernel.schedule(1.0, lambda: order.append("urgent"), priority=-1)
        kernel.run()
        assert order == ["urgent", "default"]

    def test_ordering_is_deterministic_across_kernels(self):
        def run_one():
            kernel = SimKernel(seed=42)
            order = []
            for i in range(20):
                kernel.schedule(
                    1.0, lambda i=i: order.append(i), priority=i % 3
                )
            kernel.run()
            return order

        assert run_one() == run_one()


class TestRun:
    def test_run_until_stops_before_future_events(self):
        kernel = SimKernel()
        seen = []
        kernel.schedule(1.0, lambda: seen.append(1))
        kernel.schedule(10.0, lambda: seen.append(10))
        kernel.run(until=5.0)
        assert seen == [1]
        assert kernel.now == 5.0
        kernel.run()
        assert seen == [1, 10]

    def test_run_empty_advances_to_until(self):
        kernel = SimKernel()
        kernel.run(until=42.0)
        assert kernel.now == 42.0

    def test_max_events_livelock_guard(self):
        kernel = SimKernel()

        def forever():
            kernel.schedule(0.001, forever)

        kernel.schedule(0.0, forever)
        with pytest.raises(SimulationError):
            kernel.run(max_events=100)

    def test_not_reentrant(self):
        kernel = SimKernel()

        def recurse():
            kernel.run()

        kernel.schedule(0.0, recurse)
        with pytest.raises(SimulationError):
            kernel.run()

    def test_events_processed_counter(self):
        kernel = SimKernel()
        for _ in range(7):
            kernel.schedule(1.0, lambda: None)
        kernel.run()
        assert kernel.events_processed == 7


class TestDeterminism:
    def test_same_seed_same_jitter(self):
        a = SimKernel(seed=42)
        b = SimKernel(seed=42)
        assert [a.jitter(1, 2) for _ in range(10)] == [
            b.jitter(1, 2) for _ in range(10)
        ]

    def test_different_seed_different_jitter(self):
        a = SimKernel(seed=1)
        b = SimKernel(seed=2)
        assert [a.jitter(1, 2) for _ in range(5)] != [
            b.jitter(1, 2) for _ in range(5)
        ]

    def test_jitter_bounds(self):
        kernel = SimKernel(seed=0)
        for _ in range(100):
            value = kernel.jitter(5.0, 2.0)
            assert 5.0 <= value < 7.0


class TestRunUntilQuiet:
    def test_quiesces_after_activity_stops(self):
        kernel = SimKernel()
        state = {"changes": 0}

        def churn(n):
            if n > 0:
                state["changes"] += 1
                kernel.schedule(1.0, lambda: churn(n - 1))

        churn(5)
        changed = {"last": 0}

        def poll():
            if state["changes"] != changed["last"]:
                changed["last"] = state["changes"]
                return False
            return True

        end = kernel.run_until_quiet(3.0, poll=poll)
        # Last change at t=4 (n decrements each second); quiet at ~7.
        assert end == pytest.approx(7.0, abs=1.5)

    def test_empty_queue_quiesces_immediately(self):
        kernel = SimKernel()
        end = kernel.run_until_quiet(2.0)
        assert end == 2.0

    def test_max_time_exceeded_raises(self):
        kernel = SimKernel()

        def forever():
            kernel.schedule(1.0, forever)

        kernel.schedule(0.0, forever)
        with pytest.raises(SimulationError):
            kernel.run_until_quiet(10.0, poll=lambda: False, max_time=50.0)

    def test_max_time_timeout_is_structured(self):
        kernel = SimKernel()

        def forever():
            kernel.schedule(1.0, forever)

        kernel.schedule(0.0, forever)
        with pytest.raises(QuiescenceTimeout) as excinfo:
            kernel.run_until_quiet(10.0, poll=lambda: False, max_time=50.0)
        assert excinfo.value.drained is False
        assert excinfo.value.at <= 50.0

    def test_drained_queue_without_quiescence_raises(self):
        """A drained queue used to read as silent success even when the
        predicate never held; now it is a structured failure."""
        kernel = SimKernel()
        kernel.schedule(1.0, lambda: None)
        with pytest.raises(QuiescenceTimeout) as excinfo:
            kernel.run_until_quiet(5.0, poll=lambda: False)
        assert excinfo.value.drained is True
