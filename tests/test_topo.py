"""Tests for topology model, parser, and builders."""

import pytest

from repro.topo.builder import (
    TopologyBuilder,
    fabric_topology,
    interface_name,
    line_topology,
    ring_topology,
    wan_topology,
)
from repro.topo.model import NodeSpec, Topology, TopologyError
from repro.topo.parser import (
    TopologyParseError,
    format_topology,
    parse_topology,
)


class TestTopologyModel:
    def test_duplicate_node_rejected(self):
        topo = Topology()
        topo.add_node(NodeSpec(name="r1"))
        with pytest.raises(TopologyError):
            topo.add_node(NodeSpec(name="r1"))

    def test_empty_name_rejected(self):
        with pytest.raises(TopologyError):
            NodeSpec(name="")

    def test_link_unknown_node_rejected(self):
        topo = Topology()
        topo.add_node(NodeSpec(name="r1"))
        with pytest.raises(TopologyError):
            topo.add_link("r1", "Ethernet1", "ghost", "Ethernet1")

    def test_port_reuse_rejected(self):
        topo = Topology()
        topo.add_node(NodeSpec(name="r1"))
        topo.add_node(NodeSpec(name="r2"))
        topo.add_node(NodeSpec(name="r3"))
        topo.add_link("r1", "Ethernet1", "r2", "Ethernet1")
        with pytest.raises(TopologyError):
            topo.add_link("r1", "Ethernet1", "r3", "Ethernet1")

    def test_self_loop_rejected(self):
        topo = Topology()
        topo.add_node(NodeSpec(name="r1"))
        with pytest.raises(TopologyError):
            topo.add_link("r1", "Ethernet1", "r1", "Ethernet1")

    def test_neighbors(self):
        topo = line_topology(3)
        assert topo.neighbors("r2") == ["r1", "r3"]

    def test_find_link_either_direction(self):
        topo = line_topology(3)
        assert topo.find_link("r2", "r1") is not None
        assert topo.find_link("r1", "r3") is None

    def test_link_other_end(self):
        topo = line_topology(2)
        link = topo.links[0]
        assert link.other(link.a) == link.z
        assert link.other(link.z) == link.a

    def test_validate_empty_fails(self):
        with pytest.raises(TopologyError):
            Topology().validate()

    def test_unknown_node_lookup(self):
        with pytest.raises(TopologyError):
            line_topology(2).node("r9")


class TestParser:
    TEXT = '''
    name: "demo"
    # a comment
    node {
      name: "r1"
      vendor: "arista"
      os_version: "4.34.0F"
      cpu: 0.5
      memory_gb: 1.0
    }
    node { name: "r2" vendor: "nokia" }
    link {
      a_node: "r1"
      a_int: "Ethernet1"
      z_node: "r2"
      z_int: "ethernet-1/1"
    }
    '''

    def test_parse_basic(self):
        topo = parse_topology(self.TEXT)
        assert topo.name == "demo"
        assert len(topo) == 2
        assert topo.node("r1").cpu == 0.5
        assert topo.node("r2").vendor == "nokia"
        assert len(topo.links) == 1

    def test_roundtrip_through_format(self):
        topo = parse_topology(self.TEXT)
        text = format_topology(topo)
        again = parse_topology(text)
        assert again.node_names() == topo.node_names()
        assert len(again.links) == len(topo.links)
        assert again.node("r1").os_version == "4.34.0F"

    def test_config_inline(self):
        text = 'node { name: "r1" config: "hostname r1\\nip routing" }'
        topo = parse_topology(text)
        assert "ip routing" in topo.node("r1").config

    def test_config_file_loaded(self, tmp_path):
        (tmp_path / "r1.cfg").write_text("hostname r1\n")
        text = 'node { name: "r1" config_file: "r1.cfg" }'
        topo = parse_topology(text, config_dir=tmp_path)
        assert topo.node("r1").config == "hostname r1\n"

    def test_missing_config_file_raises(self, tmp_path):
        text = 'node { name: "r1" config_file: "nope.cfg" }'
        with pytest.raises(TopologyParseError):
            parse_topology(text, config_dir=tmp_path)

    def test_node_without_name_rejected(self):
        with pytest.raises(TopologyParseError):
            parse_topology('node { vendor: "arista" }')

    def test_incomplete_link_rejected(self):
        with pytest.raises(TopologyParseError):
            parse_topology(
                'node { name: "r1" }\nlink { a_node: "r1" a_int: "e1" }'
            )

    def test_garbage_rejected(self):
        with pytest.raises(TopologyParseError):
            parse_topology("node { name: } }")

    def test_format_includes_configs_when_asked(self):
        topo = Topology("t")
        topo.add_node(NodeSpec(name="r1", config="hostname r1\n"))
        text = format_topology(topo, include_configs=True)
        assert "hostname r1" in text


class TestBuilders:
    def test_line(self):
        topo = line_topology(4)
        assert len(topo) == 4
        assert len(topo.links) == 3

    def test_ring(self):
        topo = ring_topology(5)
        assert len(topo.links) == 5
        assert sorted(topo.neighbors("r1")) == ["r2", "r5"]

    def test_ring_too_small(self):
        with pytest.raises(ValueError):
            ring_topology(2)

    def test_fabric(self):
        topo = fabric_topology(2, 4)
        assert len(topo) == 6
        assert len(topo.links) == 8

    def test_wan_connected(self):
        topo = wan_topology(20, seed=5)
        # BFS from r1 must reach everything (spanning tree guarantees it).
        seen = {"r1"}
        frontier = ["r1"]
        while frontier:
            node = frontier.pop()
            for neighbor in topo.neighbors(node):
                if neighbor not in seen:
                    seen.add(neighbor)
                    frontier.append(neighbor)
        assert len(seen) == 20

    def test_wan_deterministic(self):
        a = wan_topology(15, seed=9)
        b = wan_topology(15, seed=9)
        assert [str(l) for l in a.links] == [str(l) for l in b.links]

    def test_wan_multivendor_alternates(self):
        topo = wan_topology(4, vendors=("arista", "nokia"))
        vendors = [spec.vendor for spec in topo.nodes]
        assert vendors == ["arista", "nokia", "arista", "nokia"]

    def test_interface_naming_by_vendor(self):
        assert interface_name("arista", 2) == "Ethernet2"
        assert interface_name("nokia", 2) == "ethernet-1/2"

    def test_builder_auto_ports_unique(self):
        builder = TopologyBuilder()
        builder.node("a").node("b").node("c")
        builder.link("a", "b")
        builder.link("a", "c")
        ports = [link.a.interface for link in builder.topology.links]
        assert ports == ["Ethernet1", "Ethernet2"]
