"""IS-IS protocol behaviour tests over the mini harness."""

from repro.net.addr import Prefix, parse_ipv4
from repro.rib.route import Protocol

from tests.helpers import isis_config, mini_net


def line3(seed=0):
    configs = {
        "r1": isis_config("r1", 1, "2.2.2.1", [("Ethernet1", "10.0.0.0/31")]),
        "r2": isis_config(
            "r2", 2, "2.2.2.2",
            [("Ethernet1", "10.0.0.1/31"), ("Ethernet2", "10.0.1.0/31")],
        ),
        "r3": isis_config("r3", 3, "2.2.2.3", [("Ethernet1", "10.0.1.1/31")]),
    }
    links = [
        ("r1", "Ethernet1", "r2", "Ethernet1"),
        ("r2", "Ethernet2", "r3", "Ethernet1"),
    ]
    net = mini_net(configs, links, seed=seed)
    net.converge()
    return net


class TestAdjacency:
    def test_adjacencies_form(self):
        net = line3()
        r2 = net.router("r2")
        assert sorted(a.system_id for a in r2.isis.adjacency_summary()) == [
            "0000.0000.0001",
            "0000.0000.0003",
        ]

    def test_edge_router_single_adjacency(self):
        net = line3()
        assert len(net.router("r1").isis.adjacencies) == 1

    def test_lsdb_synchronized(self):
        net = line3()
        dbs = [
            {lsp.system_id for lsp in net.router(n).isis.database_summary()}
            for n in ("r1", "r2", "r3")
        ]
        assert dbs[0] == dbs[1] == dbs[2]
        assert len(dbs[0]) == 3


class TestRoutes:
    def test_remote_loopbacks_installed(self):
        net = line3()
        r1 = net.router("r1")
        route = r1.rib.best(Prefix.parse("2.2.2.3/32"))
        assert route is not None
        assert route.protocol is Protocol.ISIS
        # Two links at metric 10 plus the originator's prefix metric 10.
        assert route.metric == 30

    def test_transit_subnet_learned(self):
        net = line3()
        r1 = net.router("r1")
        route = r1.rib.best(Prefix.parse("10.0.1.0/31"))
        assert route is not None and route.protocol is Protocol.ISIS

    def test_own_prefixes_not_isis(self):
        net = line3()
        r1 = net.router("r1")
        route = r1.rib.best(Prefix.parse("2.2.2.1/32"))
        assert route.protocol is not Protocol.ISIS

    def test_next_hop_is_neighbor_address(self):
        net = line3()
        route = net.router("r1").rib.best(Prefix.parse("2.2.2.3/32"))
        assert route.next_hops[0].ip == parse_ipv4("10.0.0.1")
        assert route.next_hops[0].interface == "Ethernet1"


class TestMetricsAndEcmp:
    def test_custom_metric_shifts_path(self):
        # Square: r1-r2-r4 and r1-r3-r4; make r1-r2 expensive.
        def cfg(name, index, loopback, interfaces, expensive=None):
            text = isis_config(name, index, loopback, interfaces)
            if expensive:
                text += (
                    f"interface {expensive}\n   isis metric 100\n"
                )
            return text

        configs = {
            "r1": cfg("r1", 1, "2.2.2.1",
                      [("Ethernet1", "10.0.0.0/31"), ("Ethernet2", "10.0.1.0/31")],
                      expensive="Ethernet1"),
            "r2": cfg("r2", 2, "2.2.2.2",
                      [("Ethernet1", "10.0.0.1/31"), ("Ethernet2", "10.0.2.0/31")]),
            "r3": cfg("r3", 3, "2.2.2.3",
                      [("Ethernet1", "10.0.1.1/31"), ("Ethernet2", "10.0.3.0/31")]),
            "r4": cfg("r4", 4, "2.2.2.4",
                      [("Ethernet1", "10.0.2.1/31"), ("Ethernet2", "10.0.3.1/31")]),
        }
        links = [
            ("r1", "Ethernet1", "r2", "Ethernet1"),
            ("r1", "Ethernet2", "r3", "Ethernet1"),
            ("r2", "Ethernet2", "r4", "Ethernet1"),
            ("r3", "Ethernet2", "r4", "Ethernet2"),
        ]
        net = mini_net(configs, links)
        net.converge()
        route = net.router("r1").rib.best(Prefix.parse("2.2.2.4/32"))
        # Must go via r3 (Ethernet2), avoiding the expensive link.
        assert route.next_hops[0].interface == "Ethernet2"

    def test_equal_cost_paths_both_installed(self):
        configs = {
            "r1": isis_config("r1", 1, "2.2.2.1",
                              [("Ethernet1", "10.0.0.0/31"),
                               ("Ethernet2", "10.0.1.0/31")]),
            "r2": isis_config("r2", 2, "2.2.2.2",
                              [("Ethernet1", "10.0.0.1/31"),
                               ("Ethernet2", "10.0.2.0/31")]),
            "r3": isis_config("r3", 3, "2.2.2.3",
                              [("Ethernet1", "10.0.1.1/31"),
                               ("Ethernet2", "10.0.3.0/31")]),
            "r4": isis_config("r4", 4, "2.2.2.4",
                              [("Ethernet1", "10.0.2.1/31"),
                               ("Ethernet2", "10.0.3.1/31")]),
        }
        links = [
            ("r1", "Ethernet1", "r2", "Ethernet1"),
            ("r1", "Ethernet2", "r3", "Ethernet1"),
            ("r2", "Ethernet2", "r4", "Ethernet1"),
            ("r3", "Ethernet2", "r4", "Ethernet2"),
        ]
        net = mini_net(configs, links)
        net.converge()
        route = net.router("r1").rib.best(Prefix.parse("2.2.2.4/32"))
        assert len(route.next_hops) == 2


class TestFailure:
    def test_link_cut_reroutes_or_withdraws(self):
        net = line3()
        net.link_down("r2", "Ethernet2", "r3", "Ethernet1")
        net.converge()
        assert net.router("r1").rib.best(Prefix.parse("2.2.2.3/32")) is None

    def test_link_cut_keeps_unaffected_routes(self):
        net = line3()
        net.link_down("r2", "Ethernet2", "r3", "Ethernet1")
        net.converge()
        assert net.router("r1").rib.best(Prefix.parse("2.2.2.2/32")) is not None

    def test_ring_reroutes_around_cut(self):
        configs = {
            "r1": isis_config("r1", 1, "2.2.2.1",
                              [("Ethernet1", "10.0.0.0/31"),
                               ("Ethernet2", "10.0.2.1/31")]),
            "r2": isis_config("r2", 2, "2.2.2.2",
                              [("Ethernet1", "10.0.0.1/31"),
                               ("Ethernet2", "10.0.1.0/31")]),
            "r3": isis_config("r3", 3, "2.2.2.3",
                              [("Ethernet1", "10.0.1.1/31"),
                               ("Ethernet2", "10.0.2.0/31")]),
        }
        links = [
            ("r1", "Ethernet1", "r2", "Ethernet1"),
            ("r2", "Ethernet2", "r3", "Ethernet1"),
            ("r3", "Ethernet2", "r1", "Ethernet2"),
        ]
        net = mini_net(configs, links)
        net.converge()
        before = net.router("r1").rib.best(Prefix.parse("2.2.2.3/32"))
        assert before.next_hops[0].interface == "Ethernet2"  # direct
        net.link_down("r3", "Ethernet2", "r1", "Ethernet2")
        net.converge()
        after = net.router("r1").rib.best(Prefix.parse("2.2.2.3/32"))
        assert after is not None
        assert after.next_hops[0].interface == "Ethernet1"  # via r2
        assert after.metric == 30

    def test_hold_timer_expiry_without_carrier_loss(self):
        # Cut only one direction's channel (r2 can't hear r3) without
        # signalling link-down: the adjacency must die by hold timeout.
        net = line3()
        channel = net.channels[("r3", "Ethernet1")]  # r3 -> r2 direction
        channel.set_down()
        net.converge(quiet=3.0)
        r2 = net.router("r2")
        assert "0000.0000.0003" not in r2.isis.adjacencies


class TestPassive:
    def test_passive_interface_advertised_but_no_adjacency(self):
        net = line3()
        r1 = net.router("r1")
        # Loopback prefix advertised...
        own_lsp = r1.isis.lsdb["0000.0000.0001"]
        advertised = {str(p) for p, _m in own_lsp.prefixes}
        assert "2.2.2.1/32" in advertised
        # ...but no adjacency was ever attempted on it.
        assert all(
            adj.port.name != "Loopback0" for adj in r1.isis.adjacencies.values()
        )
