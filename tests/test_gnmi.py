"""gNMI path grammar, AFT model, and server tests."""

import json

import pytest

from repro.gnmi.aft import AftSnapshot
from repro.gnmi.paths import PathError, parse_path
from repro.gnmi.server import GnmiError, GnmiServer, dump_afts
from repro.net.addr import parse_ipv4

from tests.helpers import isis_config, mini_net


class TestPathGrammar:
    def test_simple(self):
        path = parse_path("/interfaces/interface")
        assert path.names == ("interfaces", "interface")

    def test_keys(self):
        path = parse_path(
            "/network-instances/network-instance[name=default]/afts"
        )
        assert path.elements[1].key("name") == "default"

    def test_multiple_keys(self):
        path = parse_path("/a/b[x=1][y=2]/c")
        assert path.elements[1].keys == (("x", "1"), ("y", "2"))

    def test_key_value_with_slash(self):
        path = parse_path("/interfaces/interface[name=ethernet-1/1]/state")
        assert path.elements[1].key("name") == "ethernet-1/1"

    def test_root(self):
        assert len(parse_path("/")) == 0

    def test_str_roundtrip(self):
        text = "/network-instances/network-instance[name=default]/afts"
        assert str(parse_path(text)) == text

    def test_relative_rejected(self):
        with pytest.raises(PathError):
            parse_path("interfaces/interface")

    def test_trailing_slash_rejected(self):
        with pytest.raises(PathError):
            parse_path("/interfaces/")

    def test_missing_key_raises(self):
        path = parse_path("/a[x=1]")
        with pytest.raises(KeyError):
            path.elements[0].key("y")

    def test_starts_with(self):
        path = parse_path("/a/b/c")
        assert path.starts_with("a", "b")
        assert not path.starts_with("b")


@pytest.fixture(scope="module")
def net():
    configs = {
        "r1": isis_config("r1", 1, "2.2.2.1", [("Ethernet1", "10.0.0.0/31")]),
        "r2": isis_config("r2", 2, "2.2.2.2", [("Ethernet1", "10.0.0.1/31")]),
    }
    net = mini_net(configs, [("r1", "Ethernet1", "r2", "Ethernet1")])
    net.converge()
    return net


class TestAftSnapshot:
    def test_extraction_covers_fib(self, net):
        snapshot = AftSnapshot.from_router(net.router("r1"))
        assert len(snapshot) == len(net.router("r1").rib.fib)

    def test_receive_entries_for_own_addresses(self, net):
        snapshot = AftSnapshot.from_router(net.router("r1"))
        receives = {
            e.prefix for e in snapshot.entries if e.entry_type == "receive"
        }
        assert "10.0.0.0/32" in receives

    def test_forward_entries_reference_valid_groups(self, net):
        snapshot = AftSnapshot.from_router(net.router("r1"))
        for entry in snapshot.entries:
            if entry.entry_type == "forward":
                group = snapshot.next_hop_groups[entry.next_hop_group]
                for index in group.next_hop_indices:
                    assert index in snapshot.next_hops

    def test_interfaces_reported(self, net):
        snapshot = AftSnapshot.from_router(net.router("r1"))
        names = {i.name for i in snapshot.interfaces}
        assert {"Ethernet1", "Loopback0"} <= names

    def test_json_roundtrip(self, net):
        snapshot = AftSnapshot.from_router(net.router("r1"))
        blob = json.dumps(snapshot.to_dict())
        restored = AftSnapshot.from_dict(json.loads(blob))
        assert restored.device == snapshot.device
        assert restored.entries == snapshot.entries
        assert restored.next_hops == snapshot.next_hops
        assert restored.interfaces == snapshot.interfaces

    def test_local_addresses(self, net):
        snapshot = AftSnapshot.from_router(net.router("r1"))
        assert parse_ipv4("2.2.2.1") in snapshot.local_addresses()


class TestGnmiServer:
    def test_get_afts(self, net):
        server = GnmiServer(net.router("r1"))
        data = server.get(
            "/network-instances/network-instance[name=default]/afts"
        )
        entries = data["network-instances"]["network-instance"][0]["afts"][
            "ipv4-unicast"
        ]["ipv4-entry"]
        assert any(e["prefix"] == "2.2.2.2/32" for e in entries)

    def test_get_interfaces(self, net):
        server = GnmiServer(net.router("r1"))
        data = server.get("/interfaces")
        names = {i["name"] for i in data["interfaces"]["interface"]}
        assert "Ethernet1" in names

    def test_get_one_interface(self, net):
        server = GnmiServer(net.router("r1"))
        data = server.get("/interfaces/interface[name=Ethernet1]")
        assert len(data["interfaces"]["interface"]) == 1

    def test_get_missing_interface(self, net):
        server = GnmiServer(net.router("r1"))
        with pytest.raises(GnmiError):
            server.get("/interfaces/interface[name=Ethernet9]")

    def test_get_hostname(self, net):
        server = GnmiServer(net.router("r1"))
        assert server.get("/system")["system"]["state"]["hostname"] == "r1"

    def test_unknown_instance(self, net):
        server = GnmiServer(net.router("r1"))
        with pytest.raises(GnmiError):
            server.get("/network-instances/network-instance[name=red]/afts")

    def test_unsupported_path(self, net):
        server = GnmiServer(net.router("r1"))
        with pytest.raises(GnmiError):
            server.get("/lldp")

    def test_dump_afts_all_devices(self, net):
        snapshots = dump_afts(net)
        assert set(snapshots) == {"r1", "r2"}
        assert all(len(s) > 0 for s in snapshots.values())

    def test_dump_afts_empty_node_set(self, net):
        assert dump_afts(net, nodes=[]) == {}

    def test_dump_afts_unknown_node(self, net):
        with pytest.raises(KeyError):
            dump_afts(net, nodes=["r1", "r99"])

    def test_dump_afts_emits_entry_counts(self, net):
        from repro.obs import tracing

        with tracing() as tracer:
            snapshots = dump_afts(net)
        dumped = {
            e.node: e.detail["entries"]
            for e in tracer.events_in("gnmi.aft.dump")
        }
        assert dumped == {
            name: len(snapshot) for name, snapshot in snapshots.items()
        }


class TestSubscribe:
    def test_on_change_fires_on_link_cut(self):
        configs = {
            "s1": isis_config("s1", 1, "3.3.3.1", [("Ethernet1", "10.1.0.0/31")]),
            "s2": isis_config("s2", 2, "3.3.3.2", [("Ethernet1", "10.1.0.1/31")]),
        }
        live = mini_net(configs, [("s1", "Ethernet1", "s2", "Ethernet1")])
        live.converge()
        updates = []
        server = GnmiServer(live.router("s1"))
        subscription = server.subscribe(
            "/network-instances/network-instance[name=default]/afts",
            updates.append,
        )
        live.link_down("s1", "Ethernet1", "s2", "Ethernet1")
        live.converge(quiet=3.0)
        assert subscription.updates_delivered >= 1
        assert updates[-1]["update"]["network-instances"]
        assert updates[-1]["timestamp"] > 0

    def test_cancel_stops_delivery(self):
        configs = {
            "s1": isis_config("s1", 1, "3.3.3.1", [("Ethernet1", "10.1.0.0/31")]),
            "s2": isis_config("s2", 2, "3.3.3.2", [("Ethernet1", "10.1.0.1/31")]),
        }
        live = mini_net(configs, [("s1", "Ethernet1", "s2", "Ethernet1")])
        live.converge()
        updates = []
        server = GnmiServer(live.router("s1"))
        subscription = server.subscribe("/interfaces", updates.append)
        subscription.cancel()
        live.link_down("s1", "Ethernet1", "s2", "Ethernet1")
        live.converge(quiet=3.0)
        assert updates == []
