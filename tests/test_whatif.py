"""What-if campaign subsystem tests.

The campaign's correctness claims, each pinned here:

* scenario generators cover exactly the advertised sweep;
* a warm single-link campaign over a ring is fault-tolerant end to end
  (no new invariant violations, clean reverts) and its per-scenario
  AFTs match a cold-run oracle by fingerprint;
* flaps return the network to the baseline (the transient leaves no
  residue);
* node kills surface real damage and restore cleanly;
* a dirty revert triggers the cold-reset fallback without poisoning
  later verdicts;
* the process-pool mode agrees with the sequential path.
"""

import json

import pytest

from repro.core.context import ScenarioContext
from repro.protocols.timers import FAST_TIMERS
from repro.topo.builder import ring_topology
from repro.topo.model import NodeSpec, Topology
from repro.whatif import (
    CampaignReport,
    FaultScenario,
    ScenarioVerdict,
    WhatIfCampaign,
    cold_run,
    k_link_failures,
    link_flap_scenarios,
    single_link_failures,
    single_node_failures,
)
from tests.helpers import isis_config

RING_SIZE = 4


def build_ring(n: int = RING_SIZE) -> Topology:
    """An n-ring with IS-IS everywhere: single-fault tolerant by design."""
    topology = ring_topology(n)
    addresses: dict[str, list[tuple[str, str]]] = {}
    for j, link in enumerate(topology.links):
        base = f"10.0.{j}"
        addresses.setdefault(link.a.node, []).append(
            (link.a.interface, f"{base}.0/31")
        )
        addresses.setdefault(link.z.node, []).append(
            (link.z.interface, f"{base}.1/31")
        )
    for i, spec in enumerate(topology.nodes, start=1):
        spec.config = isis_config(
            spec.name, i, f"2.2.2.{i}", addresses[spec.name]
        )
    return topology


def ring_campaign(scenarios, **kwargs) -> WhatIfCampaign:
    return WhatIfCampaign(
        build_ring(),
        scenarios,
        timers=FAST_TIMERS,
        quiet_period=5.0,
        **kwargs,
    )


class TestGenerators:
    def test_single_link_failures_cover_every_link(self):
        topology = build_ring()
        scenarios = list(single_link_failures(topology))
        assert len(scenarios) == len(topology.links)
        assert all(s.kind == "link-cut" for s in scenarios)
        assert all(len(s.links) == 1 for s in scenarios)
        assert len({s.name for s in scenarios}) == len(scenarios)

    def test_parallel_links_deduplicated(self):
        # Two links between one node pair map to the same perturbation
        # (set_link_state resolves by node pair), so sweep the pair once.
        topology = Topology("parallel")
        topology.add_node(NodeSpec(name="a"))
        topology.add_node(NodeSpec(name="b"))
        topology.add_link("a", "eth1", "b", "eth1")
        topology.add_link("a", "eth2", "b", "eth2")
        scenarios = list(single_link_failures(topology))
        assert len(scenarios) == 1

    def test_single_node_failures_carry_attached_links(self):
        topology = build_ring()
        scenarios = list(single_node_failures(topology))
        assert len(scenarios) == RING_SIZE
        assert all(s.kind == "node-down" for s in scenarios)
        # Every ring node has exactly two attached links.
        assert all(len(s.links) == 2 for s in scenarios)
        assert all(len(s.nodes) == 1 for s in scenarios)

    def test_k_link_failures_combinatorial(self):
        from math import comb

        topology = build_ring()
        scenarios = list(k_link_failures(topology, k=2))
        assert len(scenarios) == comb(RING_SIZE, 2)
        assert all(len(s.links) == 2 for s in scenarios)
        with pytest.raises(ValueError):
            list(k_link_failures(topology, k=0))

    def test_flap_scenarios_self_revert(self):
        topology = build_ring()
        scenarios = list(link_flap_scenarios(topology, hold_seconds=7.0))
        assert len(scenarios) == RING_SIZE
        for s in scenarios:
            assert s.self_reverting
            assert s.flap_hold == 7.0
            assert s.min_quiet_period == 8.0
        with pytest.raises(ValueError):
            list(link_flap_scenarios(topology, hold_seconds=0.0))

    def test_to_context_expresses_link_scenarios(self):
        scenario = FaultScenario(
            name="link:a-b", kind="link-cut", links=(("a", "b"),)
        )
        context = scenario.to_context(ScenarioContext())
        assert context.down_links == (("a", "b"),)
        flap = FaultScenario(
            name="flap:a-b",
            kind="link-flap",
            links=(("a", "b"),),
            flap_hold=5.0,
        )
        # A flap's steady state is the baseline itself.
        assert flap.to_context(ScenarioContext()) == ScenarioContext()

    def test_non_flap_min_quiet_is_zero(self):
        scenario = FaultScenario(
            name="link:a-b", kind="link-cut", links=(("a", "b"),)
        )
        assert scenario.min_quiet_period == 0.0
        assert not scenario.self_reverting


class TestSingleLinkCampaign:
    @pytest.fixture(scope="class")
    def report(self):
        topology = build_ring()
        scenarios = list(single_link_failures(topology))
        campaign = WhatIfCampaign(
            topology, scenarios, timers=FAST_TIMERS, quiet_period=5.0
        )
        return campaign.run()

    def test_one_verdict_per_link(self, report):
        assert len(report.verdicts) == RING_SIZE

    def test_ring_survives_any_single_cut(self, report):
        # The ring's entire point: no loops, no blackholes, every pair
        # still reachable. The only behaviour change is the cut /31
        # itself disappearing, which shows up as regressed rows.
        for verdict in report.verdicts:
            assert verdict.new_loops == 0
            assert verdict.new_blackholes == 0
            assert verdict.new_unreachable_pairs == 0
            assert verdict.regressed > 0

    def test_all_scenarios_revert_cleanly(self, report):
        assert all(v.reverted_clean for v in report.verdicts)
        assert report.cold_resets == 0

    def test_incremental_beats_cold_by_3x(self, report):
        assert report.incremental_sim_seconds > 0
        assert report.speedup >= 3.0

    def test_warm_afts_match_cold_oracle(self, report):
        # The acceptance anchor: re-run one scenario from scratch with
        # the fault pre-applied; the warm path's extracted AFTs must be
        # identical by fingerprint.
        topology = build_ring()
        scenario = next(iter(single_link_failures(topology)))
        cold = cold_run(
            topology, scenario, timers=FAST_TIMERS, quiet_period=5.0
        )
        warm = next(
            v for v in report.verdicts if v.scenario == scenario.name
        )
        assert cold.dataplane.fib_fingerprint() == warm.fib_fingerprint

    def test_render_table(self, report):
        text = report.render()
        assert "what-if campaign" in text
        assert "x faster" in text
        for verdict in report.verdicts:
            assert verdict.scenario in text

    def test_to_dict_is_json_serializable(self, report):
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["topology"] == "ring"
        assert len(payload["scenarios"]) == RING_SIZE
        assert payload["speedup"] >= 3.0

    def test_ranked_orders_by_severity_then_name(self, report):
        ranked = report.ranked()
        severities = [v.severity for v in ranked]
        assert severities == sorted(severities, reverse=True)


class TestFlapCampaign:
    def test_flap_returns_to_baseline(self):
        topology = build_ring()
        scenarios = list(link_flap_scenarios(topology, hold_seconds=10.0))[:2]
        campaign = WhatIfCampaign(
            topology, scenarios, timers=FAST_TIMERS, quiet_period=5.0
        )
        report = campaign.run()
        for verdict in report.verdicts:
            # The transient leaves no residue: by extraction time the
            # link is back and the dataplane equals the baseline.
            assert verdict.changed == 0
            assert verdict.severity == 0
            assert verdict.reverted_clean
            assert verdict.revert_seconds == 0.0


class TestNodeCampaign:
    def test_node_kill_surfaces_damage_and_reverts(self):
        topology = build_ring()
        scenarios = list(single_node_failures(topology))[:1]
        campaign = WhatIfCampaign(
            topology, scenarios, timers=FAST_TIMERS, quiet_period=5.0
        )
        report = campaign.run()
        [verdict] = report.verdicts
        # The dead node's loopback and /31s vanish for everyone else.
        assert verdict.regressed > 0
        assert verdict.new_loops == 0
        # Surviving nodes still reach each other around the ring.
        assert verdict.new_unreachable_pairs == 0
        assert verdict.reverted_clean
        assert report.cold_resets == 0


class TestColdFallback:
    def test_dirty_revert_triggers_cold_reset(self, monkeypatch):
        topology = build_ring()
        scenarios = list(single_link_failures(topology))[:2]
        clean = WhatIfCampaign(
            topology, scenarios, timers=FAST_TIMERS, quiet_period=5.0
        ).run()

        # Sabotage revert: links stay down, the baseline check must
        # catch it and rebuild a fresh deployment per scenario.
        monkeypatch.setattr(FaultScenario, "revert", lambda self, dep: None)
        dirty = WhatIfCampaign(
            topology, scenarios, timers=FAST_TIMERS, quiet_period=5.0
        ).run()
        assert dirty.cold_resets == len(scenarios)
        assert all(not v.reverted_clean for v in dirty.verdicts)
        # The cold reset is charged to the offending scenario.
        assert all(
            v.revert_seconds > dirty.baseline_startup_seconds
            for v in dirty.verdicts
        )
        # Later verdicts are not poisoned by the earlier dirty state:
        # damage fields match the clean campaign exactly.
        for clean_v, dirty_v in zip(clean.verdicts, dirty.verdicts):
            assert clean_v.scenario == dirty_v.scenario
            assert clean_v.fib_fingerprint == dirty_v.fib_fingerprint
            assert clean_v.regressed == dirty_v.regressed
        assert "cold reset" in dirty.render()


class TestParallelCampaign:
    def test_workers_agree_with_sequential(self):
        topology = build_ring()
        scenarios = list(single_link_failures(topology))
        sequential = ring_campaign(scenarios).run()
        sharded = ring_campaign(scenarios).run(workers=2)
        assert [v.scenario for v in sharded.verdicts] == [
            v.scenario for v in sequential.verdicts
        ]
        for seq_v, par_v in zip(sequential.verdicts, sharded.verdicts):
            assert seq_v.fib_fingerprint == par_v.fib_fingerprint
            assert seq_v.reverted_clean == par_v.reverted_clean
            assert seq_v.severity == par_v.severity


class TestReportShapes:
    def test_severity_weights(self):
        verdict = ScenarioVerdict(
            scenario="s",
            kind="link-cut",
            reconverge_seconds=1.0,
            revert_seconds=1.0,
            reverted_clean=True,
            regressed=3,
            improved=0,
            changed=3,
            new_loops=1,
            new_blackholes=2,
            new_unreachable_pairs=4,
        )
        assert verdict.severity == 10 * 1 + 5 * 2 + 2 * 4 + 3

    def test_empty_report(self):
        report = CampaignReport(topology_name="t")
        assert report.incremental_sim_seconds == 0.0
        assert report.cold_sim_seconds == 0.0
        assert report.speedup == 0.0
        assert report.worst_severity == 0
        assert "0 scenarios" in report.render()


class TestWhatifCli:
    def test_whatif_verb_prints_ranked_table(self, capsys):
        from repro.cli import main

        code = main(["whatif", "--corpus", "fig3", "--limit", "1"])
        out = capsys.readouterr().out
        # fig3 is a line: cutting any link partitions it.
        assert code == 2
        assert "what-if campaign" in out
        assert "scenario" in out
        assert "link:r1-r2" in out

    def test_whatif_json_output(self, tmp_path, capsys):
        from repro.cli import main

        out_file = tmp_path / "report.json"
        code = main(
            [
                "whatif",
                "--corpus",
                "fig3",
                "--limit",
                "1",
                "--json",
                str(out_file),
            ]
        )
        assert code == 2
        payload = json.loads(out_file.read_text())
        assert payload["topology"] == "fig3-line"
        assert len(payload["scenarios"]) == 1

    def test_obs_timeline_whatif(self, capsys):
        from repro.cli import main

        main(["obs", "timeline", "--scenario", "whatif"])
        out = capsys.readouterr().out
        assert "What-if verdicts" in out
        assert "whatif:" in out
