"""Transient-state (temporal) verification tests.

The load-bearing property mirrors ``test_verify_delta.py``'s: every
violation interval the incremental evaluator reports (one warm engine
advanced with ``apply_delta``) must match, row for row, the brute-force
oracle that rebuilds a cold engine per checkpoint. Everything else here
guards the machinery around that core — the recorder's coalescing and
compaction, ``DataplaneDelta.compose``, stream serialization, the
kernel's ``quiesced_at``, and the pipeline/campaign/CLI wiring.
"""

from __future__ import annotations

import pytest

from repro.chaos.plan import FaultPlan, PodCrash
from repro.core.context import ScenarioContext
from repro.core.pipeline import ModelFreeBackend
from repro.corpus.production import production_scenario, scaled_timers
from repro.dataplane.delta import DataplaneDelta
from repro.dataplane.model import Dataplane
from repro.gnmi.aft import (
    AftInterface,
    AftIpv4Entry,
    AftNextHop,
    AftNextHopGroup,
    AftSnapshot,
)
from repro.obs import ConvergenceTimeline, summary_text, tracing
from repro.protocols.timers import FAST_TIMERS
from repro.temporal import (
    BlackholeWindow,
    CheckpointRecorder,
    CheckpointStream,
    MaxChurn,
    NoTransientLoop,
    WaypointAlways,
    evaluate_stream,
)
from repro.temporal.checkpoints import _coalesce_window, _max_checkpoints
from repro.verify.engine import AtomGraphEngine
from repro.verify.invariants import detect_blackholes, detect_loops
from repro.whatif import WhatIfCampaign, link_flap_scenarios


def record_flap(deployment, topology, *, hold=15.0, quiet=5.0, **kwargs):
    """Flap the topology's first link on a warm deployment while a
    recorder is armed; returns the checkpoint stream."""
    scenario = next(iter(link_flap_scenarios(topology, hold_seconds=hold)))
    recorder = CheckpointRecorder(deployment, **kwargs)
    recorder.arm()
    scenario.apply(deployment)
    deployment.wait_converged(
        quiet_period=max(quiet, scenario.min_quiet_period)
    )
    return recorder, recorder.finalize()


def assert_matches_oracle(stream, invariants=None):
    """Incremental intervals == brute-force intervals, row for row."""
    incremental = evaluate_stream(stream, invariants, use_delta=True)
    oracle = evaluate_stream(stream, invariants, use_delta=False)
    assert oracle.fallbacks == 0
    assert incremental.intervals == oracle.intervals
    return incremental


@pytest.fixture(scope="module")
def fig3_warm(fig3):
    """A converged fig3 deployment that flap recordings can reuse —
    flaps self-revert, so sequential recordings stay independent."""
    backend = ModelFreeBackend(
        fig3.topology, timers=FAST_TIMERS, quiet_period=5.0
    )
    backend.run(ScenarioContext())
    assert backend.last_run is not None
    return backend, backend.last_run.deployment, fig3.topology


@pytest.fixture(scope="module")
def fig3_stream(fig3_warm):
    _backend, deployment, topology = fig3_warm
    _recorder, stream = record_flap(deployment, topology)
    return stream


@pytest.fixture(scope="module")
def prod():
    scenario = production_scenario(8, peers=1, routes_per_peer=80, seed=7)
    backend = ModelFreeBackend(
        scenario.topology, timers=scaled_timers(80), quiet_period=30.0
    )
    context = ScenarioContext(name="prod", injectors=tuple(scenario.injectors))
    backend.run(context)
    return backend, scenario.topology


class TestTemporalOracleEquivalence:
    """Incremental evaluation == rebuild-per-checkpoint, on real
    convergence episodes."""

    def test_fig3_flap_finds_what_snapshot_verify_misses(self, fig3_stream):
        assert len(fig3_stream) >= 2
        report = assert_matches_oracle(fig3_stream)
        # The flap blackholes the line topology mid-convergence...
        assert report.transient
        names = {i.invariant for i in report.transient}
        assert names & {"blackhole-window", "no-transient-loop"}
        # ...but the final state is clean: a post-convergence check on
        # the very same episode reports nothing.
        final = fig3_stream.final.dataplane
        assert not detect_loops(final)
        assert not detect_blackholes(final)

    def test_fig2_flap_matches_oracle(self, fig2):
        backend = ModelFreeBackend(
            fig2.topology, timers=FAST_TIMERS, quiet_period=5.0
        )
        backend.run(ScenarioContext())
        _recorder, stream = record_flap(
            backend.last_run.deployment, fig2.topology
        )
        assert len(stream) >= 2
        assert_matches_oracle(stream)

    def test_production_flap_matches_oracle(self, prod, monkeypatch):
        # Lift the dirty-fraction gate so the warm path actually
        # patches (the mechanism under test), as test_verify_delta does.
        monkeypatch.setenv("MFV_DELTA_THRESHOLD", "1.0")
        backend, topology = prod
        _recorder, stream = record_flap(
            backend.last_run.deployment, topology, hold=30.0, quiet=30.0
        )
        assert len(stream) >= 2
        report = assert_matches_oracle(stream)
        assert report.fallbacks == 0  # every step took the delta path

    def test_chaos_crash_matches_oracle(self, fig3):
        plan = FaultPlan(
            name="crash-restart",
            faults=(PodCrash(node="r2", at=60.0, restart_after=30.0),),
        )
        backend = ModelFreeBackend(
            fig3.topology, timers=FAST_TIMERS, quiet_period=5.0
        )
        snapshot = backend.run(ScenarioContext(), chaos=plan, temporal=True)
        assert backend.last_temporal is not None
        stream, report = backend.last_temporal
        assert report.checkpoints == len(stream)
        assert snapshot.metadata["temporal"]["checkpoints"] == len(stream)
        assert_matches_oracle(stream)


# -- hand-built dataplanes for the compose tests -----------------------------


def _iface(name, cidr):
    address, _, length = cidr.partition("/")
    return AftInterface(
        name=name,
        ipv4_address=address,
        prefix_length=int(length),
        enabled=True,
    )


def _line_afts(*, a_routes_b=True, b_routes_c=True, with_c=False):
    """a -> b (-> c), with knobs to perturb either device."""
    a = AftSnapshot(device="a")
    a.interfaces = [_iface("eth0", "10.0.0.0/31"), _iface("lo", "1.1.1.1/32")]
    a.next_hops[1] = AftNextHop(index=1, interface="eth0", ip_address="10.0.0.1")
    a.next_hop_groups[1] = AftNextHopGroup(group_id=1, next_hop_indices=(1,))
    a.entries = [AftIpv4Entry(prefix="1.1.1.1/32", entry_type="receive")]
    if a_routes_b:
        a.entries.append(
            AftIpv4Entry(
                prefix="2.2.2.2/32", entry_type="forward", next_hop_group=1
            )
        )
    a.entries.append(
        AftIpv4Entry(
            prefix="3.3.3.3/32", entry_type="forward", next_hop_group=1
        )
    )

    b = AftSnapshot(device="b")
    b.interfaces = [
        _iface("eth0", "10.0.0.1/31"),
        _iface("eth1", "10.0.1.0/31"),
        _iface("lo", "2.2.2.2/32"),
    ]
    b.next_hops[1] = AftNextHop(index=1, interface="eth1", ip_address="10.0.1.1")
    b.next_hop_groups[1] = AftNextHopGroup(group_id=1, next_hop_indices=(1,))
    b.entries = [AftIpv4Entry(prefix="2.2.2.2/32", entry_type="receive")]
    if b_routes_c:
        b.entries.append(
            AftIpv4Entry(
                prefix="3.3.3.3/32", entry_type="forward", next_hop_group=1
            )
        )

    snapshots = {"a": a, "b": b}
    if with_c:
        c = AftSnapshot(device="c")
        c.interfaces = [
            _iface("eth0", "10.0.1.1/31"),
            _iface("lo", "3.3.3.3/32"),
        ]
        c.entries = [AftIpv4Entry(prefix="3.3.3.3/32", entry_type="receive")]
        snapshots["c"] = c
    return snapshots


class TestDeltaCompose:
    """A->B composed with B->C must behave exactly like A->C."""

    def test_compose_equals_direct_diff(self):
        plane_a = Dataplane.from_afts(_line_afts())
        plane_b = Dataplane.from_afts(_line_afts(b_routes_c=False))
        plane_c = Dataplane.from_afts(
            _line_afts(b_routes_c=False, a_routes_b=False)
        )
        composed = DataplaneDelta.compose(
            DataplaneDelta(plane_a, plane_b), DataplaneDelta(plane_b, plane_c)
        )
        direct = DataplaneDelta(plane_a, plane_c)
        assert composed.base is plane_a and composed.target is plane_c
        assert set(composed.touched_devices) == set(direct.touched_devices)
        assert composed.boundary_prefixes() == direct.boundary_prefixes()
        assert composed.fallback_reason() == direct.fallback_reason()
        # The real oracle: applying the composed delta yields the same
        # verdicts as a cold build of C.
        engine = AtomGraphEngine(plane_a)
        derived = engine.apply_delta(composed)
        cold = AtomGraphEngine(plane_c)
        cold.precompute()
        for index, atom in enumerate(derived.atoms):
            cold_index = cold.atom_index_of(atom.min())
            for ingress in plane_c.node_names():
                assert derived.verdict(ingress, index) == cold.verdict(
                    ingress, cold_index
                )

    def test_compose_revert_collapses_to_empty(self):
        plane_a = Dataplane.from_afts(_line_afts())
        plane_b = Dataplane.from_afts(_line_afts(b_routes_c=False))
        plane_a2 = Dataplane.from_afts(_line_afts())
        composed = DataplaneDelta.compose(
            DataplaneDelta(plane_a, plane_b), DataplaneDelta(plane_b, plane_a2)
        )
        assert composed.is_empty
        assert composed.touched_devices == ()

    def test_compose_rejects_broken_chain(self):
        plane_a = Dataplane.from_afts(_line_afts())
        plane_b = Dataplane.from_afts(_line_afts(b_routes_c=False))
        plane_c = Dataplane.from_afts(_line_afts(a_routes_b=False))
        with pytest.raises(ValueError):
            DataplaneDelta.compose(
                DataplaneDelta(plane_a, plane_b),
                DataplaneDelta(plane_a, plane_c),
            )

    def test_compose_device_set_change_falls_back_to_full_diff(self):
        plane_a = Dataplane.from_afts(_line_afts(with_c=True))
        plane_b = Dataplane.from_afts(_line_afts())
        plane_c = Dataplane.from_afts(_line_afts(b_routes_c=False))
        composed = DataplaneDelta.compose(
            DataplaneDelta(plane_a, plane_b), DataplaneDelta(plane_b, plane_c)
        )
        direct = DataplaneDelta(plane_a, plane_c)
        assert composed.fallback_reason() == "device-set"
        assert composed.fallback_reason() == direct.fallback_reason()
        assert composed.removed_devices == direct.removed_devices


class TestRecorder:
    def test_env_knob_parsing(self, monkeypatch):
        monkeypatch.setenv("MFV_TEMPORAL_COALESCE", "2.5")
        assert _coalesce_window() == 2.5
        monkeypatch.setenv("MFV_TEMPORAL_COALESCE", "-3")
        assert _coalesce_window() == 0.0
        monkeypatch.setenv("MFV_TEMPORAL_COALESCE", "garbage")
        assert _coalesce_window() == 0.25
        monkeypatch.setenv("MFV_TEMPORAL_MAX_CHECKPOINTS", "17")
        assert _max_checkpoints() == 17
        monkeypatch.setenv("MFV_TEMPORAL_MAX_CHECKPOINTS", "1")
        assert _max_checkpoints() == 2  # endpoints always survive
        monkeypatch.setenv("MFV_TEMPORAL_MAX_CHECKPOINTS", "garbage")
        assert _max_checkpoints() == 256

    def test_recorder_is_single_shot(self, fig3_warm):
        _backend, deployment, _topology = fig3_warm
        recorder = CheckpointRecorder(deployment)
        with pytest.raises(RuntimeError):
            recorder.finalize()  # never armed
        recorder.arm()
        with pytest.raises(RuntimeError):
            recorder.arm()
        recorder.finalize()
        with pytest.raises(RuntimeError):
            recorder.finalize()

    def test_quiet_deployment_yields_single_checkpoint(self, fig3_warm):
        _backend, deployment, _topology = fig3_warm
        recorder = CheckpointRecorder(deployment)
        recorder.arm()
        stream = recorder.finalize()
        assert len(stream) == 1
        assert stream.initial.delta is None
        # A converged fig3 has nothing to report at its one checkpoint.
        assert evaluate_stream(stream).intervals == []

    def test_cap_compacts_interior_checkpoints(self, fig3_warm):
        backend, deployment, topology = fig3_warm
        recorder, stream = record_flap(
            deployment, topology, max_checkpoints=2
        )
        assert len(stream) == 2
        assert recorder.compactions >= 1
        # The chain invariant survives compaction: each delta's base IS
        # the previous checkpoint's dataplane (identity, not equality).
        for prev, nxt in zip(stream.checkpoints, stream.checkpoints[1:]):
            assert nxt.delta is not None
            assert nxt.delta.base is prev.dataplane
            assert nxt.delta.target is nxt.dataplane
        # Endpoints stay exact: the final checkpoint matches a fresh
        # dump of the live (re-converged) deployment.
        live = Dataplane.from_afts(
            {
                name: AftSnapshot.from_router(
                    router, now=deployment.kernel.now
                )
                for name, router in deployment.routers.items()
            }
        )
        assert (
            stream.final.dataplane.fib_fingerprint()
            == live.fib_fingerprint()
        )
        assert_matches_oracle(stream)

    def test_stream_save_load_roundtrip(self, fig3_stream, tmp_path):
        path = tmp_path / "stream.json"
        fig3_stream.save(path)
        loaded = CheckpointStream.load(path)
        assert len(loaded) == len(fig3_stream)
        for orig, back in zip(fig3_stream.checkpoints, loaded.checkpoints):
            assert back.t == orig.t
            assert back.installs == orig.installs
            assert (
                back.dataplane.fib_fingerprint()
                == orig.dataplane.fib_fingerprint()
            )
        assert (
            evaluate_stream(loaded).intervals
            == evaluate_stream(fig3_stream).intervals
        )

    def test_empty_stream_rejected(self):
        with pytest.raises(ValueError):
            CheckpointStream.from_dict({"checkpoints": []})


class TestInvariants:
    def test_waypoint_violation_is_persistent(self, fig3_stream):
        # fig3 is a line r1-r2-r3: traffic to r2's loopback never
        # passes r3, so the waypoint is violated whenever forwarding
        # succeeds at all (the finding blinks off during the flap's
        # blackhole window, when there is no successful trace to judge)
        # and is still violated at the final, converged checkpoint.
        report = assert_matches_oracle(
            fig3_stream, [WaypointAlways("2.2.2.2", "r3")]
        )
        assert report.intervals
        assert all(i.invariant == "waypoint-always" for i in report.intervals)
        assert report.persistent
        assert report.persistent[-1].t_end == fig3_stream.final.t

    def test_max_churn_rate_gate(self, fig3_stream):
        strict = assert_matches_oracle(fig3_stream, [MaxChurn(1e-9)])
        assert strict.intervals
        assert strict.intervals[0].invariant == "max-churn"
        assert strict.intervals[0].ingress == ""  # network-wide witness
        lax = evaluate_stream(fig3_stream, [MaxChurn(1e12)])
        assert lax.intervals == []

    def test_tolerance_suppresses_short_transients(self, fig3_stream):
        baseline = evaluate_stream(
            fig3_stream, [NoTransientLoop(), BlackholeWindow()]
        )
        assert baseline.transient
        tolerant = evaluate_stream(
            fig3_stream,
            [
                NoTransientLoop(max_sim_s=1e9),
                BlackholeWindow(max_sim_s=1e9),
            ],
        )
        assert tolerant.transient == []
        # Persistent intervals are never suppressed by the tolerance.
        assert len(tolerant.persistent) == len(baseline.persistent)

    def test_interval_rendering(self, fig3_stream):
        report = evaluate_stream(fig3_stream)
        assert report.transient
        line = str(report.transient[0])
        assert "transient" in line and ")s" in line
        assert "checkpoints" in report.render()


class TestWiring:
    def test_evaluate_emits_metrics(self, fig3_stream):
        with tracing() as tracer:
            report = evaluate_stream(fig3_stream)
            assert tracer.counters["verify.temporal_checkpoints"] == len(
                fig3_stream
            )
            assert tracer.counters["verify.temporal_violations"] == len(
                report.intervals
            )
            records = {
                record["name"]: record for record in tracer.registry.collect()
            }
            assert records["verify.temporal_apply_seconds"]["count"] == len(
                fig3_stream
            )

    def test_timeline_absorbs_quiescence_and_violations(self, fig3):
        backend = ModelFreeBackend(
            fig3.topology, timers=FAST_TIMERS, quiet_period=5.0
        )
        with tracing() as tracer:
            snapshot = backend.run(ScenarioContext(), temporal=True)
        # temporal=True on a plain run watches the *initial* convergence
        # — the pre-route blackholes are themselves transient findings.
        assert snapshot.metadata["temporal"]["checkpoints"] >= 1
        timeline = ConvergenceTimeline.from_tracer(tracer)
        assert timeline.quiesced_at is not None
        rendered = timeline.render()
        assert "kernel quiesced at" in rendered
        if timeline.temporal_violations:
            assert "Temporal violations" in rendered
        assert "Kernel quiesced at t=" in summary_text(tracer)

    def test_kernel_quiesced_at_recorded(self, fig3_warm):
        _backend, deployment, _topology = fig3_warm
        kernel = deployment.kernel
        assert kernel.quiesced_at is not None
        assert 0.0 < kernel.quiesced_at <= kernel.now

    def test_campaign_temporal_verdicts(self, fig3):
        scenarios = list(
            link_flap_scenarios(fig3.topology, hold_seconds=15.0)
        )[:1]
        campaign = WhatIfCampaign(
            fig3.topology,
            scenarios,
            timers=FAST_TIMERS,
            quiet_period=5.0,
            temporal=True,
        )
        report = campaign.run()
        verdict = report.verdicts[0]
        assert verdict.temporal_checkpoints >= 2
        assert verdict.temporal_transient >= 1
        assert verdict.temporal_worst
        assert "temporal" in verdict.to_dict()
        # The flap reverts cleanly, so the snapshot-only columns are
        # blind to the damage the temporal columns just reported.
        assert verdict.new_loops == 0 and verdict.new_blackholes == 0

    def test_chaos_report_carries_temporal(self, fig3):
        from repro.chaos import run_chaos

        plan = FaultPlan(
            name="crash-restart",
            faults=(PodCrash(node="r2", at=60.0, restart_after=30.0),),
        )
        report = run_chaos(
            fig3.topology,
            plan,
            timers=FAST_TIMERS,
            quiet_period=5.0,
            temporal=True,
        )
        assert report.temporal.get("checkpoints", 0) >= 1
        assert "temporal" in report.to_dict()


class TestCli:
    def test_replay_reports_and_exits_2(
        self, fig3_stream, tmp_path, capsys
    ):
        from repro.cli import main

        path = tmp_path / "stream.json"
        fig3_stream.save(path)
        code = main(["temporal", "--replay", str(path)])
        out = capsys.readouterr().out
        assert code == 2
        assert "Temporal verification:" in out
        assert "post-convergence verify on the final state" in out

    def test_replay_brute_force_agrees(self, fig3_stream, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "stream.json"
        fig3_stream.save(path)
        assert main(["temporal", "--replay", str(path)]) == main(
            ["temporal", "--replay", str(path), "--brute-force"]
        )

    def test_waypoint_argument_validation(self, fig3_stream, tmp_path):
        from repro.cli import main

        path = tmp_path / "stream.json"
        fig3_stream.save(path)
        with pytest.raises(SystemExit):
            main(["temporal", "--replay", str(path), "--waypoint", "bad"])
