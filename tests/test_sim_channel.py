"""Tests for message channels."""

from repro.sim.channel import Channel
from repro.sim.kernel import SimKernel


def make_channel(**kwargs):
    kernel = SimKernel(seed=1)
    received = []
    channel = Channel(kernel, received.append, **kwargs)
    return kernel, channel, received


class TestDelivery:
    def test_delivers_payload(self):
        kernel, channel, received = make_channel()
        channel.send({"hello": 1})
        kernel.run()
        assert received == [{"hello": 1}]

    def test_latency_applied(self):
        kernel, channel, received = make_channel(latency=0.5, jitter=0.0)
        channel.send("x")
        kernel.run()
        assert kernel.now == 0.5

    def test_jitter_within_bounds(self):
        kernel, channel, _ = make_channel(latency=0.1, jitter=0.2)
        channel.send("x")
        kernel.run()
        assert 0.1 <= kernel.now < 0.3

    def test_fifo_like_ordering_with_zero_jitter(self):
        kernel, channel, received = make_channel(latency=0.01, jitter=0.0)
        for i in range(5):
            channel.send(i)
        kernel.run()
        assert received == [0, 1, 2, 3, 4]

    def test_counters(self):
        kernel, channel, _ = make_channel()
        channel.send("a")
        channel.send("b")
        kernel.run()
        assert channel.messages_sent == 2
        assert channel.messages_delivered == 2


class TestLinkCut:
    def test_send_on_down_channel_dropped(self):
        kernel, channel, received = make_channel()
        channel.set_down()
        assert channel.send("x") is None
        kernel.run()
        assert received == []
        assert channel.messages_sent == 1
        assert channel.messages_delivered == 0

    def test_in_flight_dropped_on_cut(self):
        kernel, channel, received = make_channel(latency=1.0, jitter=0.0)
        channel.send("doomed")
        kernel.schedule(0.5, channel.set_down)
        kernel.run()
        assert received == []

    def test_recovery(self):
        kernel, channel, received = make_channel()
        channel.set_down()
        channel.set_up()
        channel.send("back")
        kernel.run()
        assert received == ["back"]

    def test_messages_after_recovery_not_old_ones(self):
        kernel, channel, received = make_channel(latency=1.0, jitter=0.0)
        channel.send("old")
        channel.set_down()
        channel.set_up()
        channel.send("new")
        kernel.run()
        assert received == ["new"]

    def test_is_up_flag(self):
        _, channel, _ = make_channel()
        assert channel.is_up
        channel.set_down()
        assert not channel.is_up
