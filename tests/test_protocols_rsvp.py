"""RSVP-TE signaling, repair, and the vendor timer-interplay anecdote."""

from repro.net.addr import Prefix, parse_ipv4
from repro.rib.route import Protocol

from tests.helpers import isis_config, mini_net


def te_config(name, index, loopback, interfaces, tunnel_to=None):
    text = isis_config(name, index, loopback, interfaces)
    text += "mpls ip\nrouter traffic-engineering\n   rsvp\n"
    if tunnel_to:
        text += (
            f"mpls tunnel TO-{tunnel_to.replace('.', '-')}\n"
            f"   destination {tunnel_to}\n"
        )
    return text


def te_triangle(os_versions=None, seed=0):
    """r1 and r3 joined directly and via r2; r1 runs a tunnel to r3."""
    configs = {
        "r1": te_config("r1", 1, "2.2.2.1",
                        [("Ethernet1", "10.0.0.0/31"),
                         ("Ethernet2", "10.0.2.0/31")],
                        tunnel_to="2.2.2.3"),
        "r2": te_config("r2", 2, "2.2.2.2",
                        [("Ethernet1", "10.0.0.1/31"),
                         ("Ethernet2", "10.0.1.0/31")]),
        "r3": te_config("r3", 3, "2.2.2.3",
                        [("Ethernet1", "10.0.1.1/31"),
                         ("Ethernet2", "10.0.2.1/31")]),
    }
    links = [
        ("r1", "Ethernet1", "r2", "Ethernet1"),
        ("r2", "Ethernet2", "r3", "Ethernet1"),
        ("r1", "Ethernet2", "r3", "Ethernet2"),
    ]
    net = mini_net(configs, links, os_versions=os_versions or {}, seed=seed)
    net.converge(quiet=5.0)
    return net


class TestSignaling:
    def test_tunnel_comes_up(self):
        net = te_triangle()
        rsvp = net.router("r1").rsvp
        assert rsvp is not None
        tunnel = next(iter(rsvp.tunnels.values()))
        assert tunnel.up
        # Direct link is the IGP shortest path.
        assert tunnel.current_route == ("r1", "r3")

    def test_transit_state_installed_along_path(self):
        net = te_triangle()
        lsp_id = next(iter(net.router("r1").rsvp.tunnels))
        assert lsp_id in net.router("r1").rsvp.path_state
        assert lsp_id in net.router("r3").rsvp.path_state

    def test_labels_allocated(self):
        net = te_triangle()
        state = next(iter(net.router("r1").rsvp.path_state.values()))
        assert state.out_label is not None and state.out_label >= 16

    def test_tunnel_route_installed(self):
        net = te_triangle()
        route = net.router("r1").rib.best(Prefix.parse("2.2.2.3/32"))
        assert route.protocol is Protocol.RSVP_TE  # distance 7 < 115

    def test_cli_shows_tunnel(self):
        net = te_triangle()
        output = net.router("r1").cli("show mpls rsvp tunnel")
        assert "up" in output and "2.2.2.3" in output


class TestRepair:
    def test_fast_repair_with_path_err(self):
        net = te_triangle()
        t_cut = net.kernel.now
        net.link_down("r1", "Ethernet2", "r3", "Ethernet2")
        net.converge(quiet=10.0)
        tunnel = next(iter(net.router("r1").rsvp.tunnels.values()))
        assert tunnel.up
        assert tunnel.current_route == ("r1", "r2", "r3")
        repair = tunnel.last_repair_time - t_cut
        # Healthy vendors detect locally (link-down) and re-signal fast.
        assert repair < 15.0

    def test_slow_repair_with_quiet_vendor(self):
        """§2 interplay: a transit vendor that never sends PathErr forces
        soft-state-timeout-based discovery upstream."""
        # Make the tunnel traverse r2 by cutting the direct link first.
        fast = te_triangle()
        fast.link_down("r1", "Ethernet2", "r3", "Ethernet2")
        fast.converge(quiet=10.0)
        fast_tunnel = next(iter(fast.router("r1").rsvp.tunnels.values()))
        assert fast_tunnel.current_route == ("r1", "r2", "r3")
        t_cut = fast.kernel.now
        fast.link_down("r2", "Ethernet2", "r3", "Ethernet1")
        fast.converge(quiet=30.0)
        # The midpoint r2 saw the failure and (healthy build) told r1.
        healthy_repair = (
            next(iter(fast.router("r1").rsvp.tunnels.values())).last_repair_time
            - t_cut
        )
        assert healthy_repair < 15.0

    def test_tunnel_reported_down_when_no_alternate(self):
        configs = {
            "r1": te_config("r1", 1, "2.2.2.1",
                            [("Ethernet1", "10.0.0.0/31")],
                            tunnel_to="2.2.2.2"),
            "r2": te_config("r2", 2, "2.2.2.2",
                            [("Ethernet1", "10.0.0.1/31")]),
        }
        net = mini_net(configs, [("r1", "Ethernet1", "r2", "Ethernet1")])
        net.converge(quiet=5.0)
        tunnel = next(iter(net.router("r1").rsvp.tunnels.values()))
        assert tunnel.up
        net.link_down("r1", "Ethernet1", "r2", "Ethernet1")
        net.converge(quiet=5.0)
        assert not tunnel.up
        # RSVP-TE route withdrawn with the tunnel.
        assert (
            net.router("r1").rib.best(Prefix.parse("2.2.2.2/32")) is None
            or net.router("r1").rib.best(Prefix.parse("2.2.2.2/32")).protocol
            is not Protocol.RSVP_TE
        )
