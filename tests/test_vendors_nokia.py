"""Nokia SR Linux parser, CLI, and cross-vendor interop tests."""

import pytest

from repro.net.addr import Prefix, parse_ipv4
from repro.rib.route import Protocol
from repro.vendors.nokia.config_parser import parse_nokia_config

from tests.helpers import isis_config, mini_net

NOKIA_CONFIG = """\
set / system name host-name edge1
set / system grpc-server mgmt admin-state enable
set / interface ethernet-1/1 subinterface 0 ipv4 address 10.0.0.1/31
set / interface ethernet-1/1 description "core uplink"
set / interface lo0 subinterface 0 ipv4 address 2.2.2.9/32
set / network-instance default protocols isis instance default net 49.0001.0000.0000.0009.00
set / network-instance default protocols isis instance default interface ethernet-1/1.0 metric 25
set / network-instance default protocols isis instance default interface lo0.0 passive true
set / network-instance default protocols bgp autonomous-system 65009
set / network-instance default protocols bgp router-id 2.2.2.9
set / network-instance default protocols bgp neighbor 10.0.0.0 peer-as 65001
set / network-instance default protocols bgp network 2.2.2.9/32
set / network-instance default static-routes route 0.0.0.0/0 next-hop 10.0.0.0
"""


class TestNokiaParser:
    def test_hostname(self):
        device, _ = parse_nokia_config(NOKIA_CONFIG)
        assert device.hostname == "edge1"

    def test_interface_address(self):
        device, _ = parse_nokia_config(NOKIA_CONFIG)
        iface = device.interfaces["ethernet-1/1"]
        assert iface.address == parse_ipv4("10.0.0.1")
        assert iface.prefix_length == 31
        assert not iface.switchport
        assert iface.description == "core uplink"

    def test_loopback(self):
        device, _ = parse_nokia_config(NOKIA_CONFIG)
        assert device.loopback_address() == parse_ipv4("2.2.2.9")
        assert device.interfaces["lo0"].is_loopback

    def test_isis(self):
        device, _ = parse_nokia_config(NOKIA_CONFIG)
        assert device.isis.net.endswith("0009.00")
        assert device.interfaces["ethernet-1/1"].isis.metric == 25
        assert device.interfaces["lo0"].isis.passive

    def test_bgp(self):
        device, _ = parse_nokia_config(NOKIA_CONFIG)
        assert device.bgp.asn == 65009
        neighbor = device.bgp.neighbors[parse_ipv4("10.0.0.0")]
        assert neighbor.remote_as == 65001
        assert Prefix.parse("2.2.2.9/32") in device.bgp.networks

    def test_static_route(self):
        device, _ = parse_nokia_config(NOKIA_CONFIG)
        assert device.static_routes[0].next_hop == parse_ipv4("10.0.0.0")

    def test_management_recorded(self):
        device, _ = parse_nokia_config(NOKIA_CONFIG)
        assert any("grpc-server" in s for s in device.management_services)

    def test_clean_parse(self):
        _, diagnostics = parse_nokia_config(NOKIA_CONFIG)
        assert diagnostics == []

    def test_eos_syntax_rejected(self):
        """Feeding EOS config to SR Linux must fail loudly — they are
        genuinely different configuration languages."""
        _, diagnostics = parse_nokia_config("interface Ethernet1\n")
        assert diagnostics

    def test_unknown_subtree_diagnosed(self):
        _, diagnostics = parse_nokia_config("set / frob nicate\n")
        assert "unknown subtree" in diagnostics[0].message


def nokia_isis(name, index, loopback, interfaces):
    lines = [
        f"set / system name host-name {name}",
        f"set / interface lo0 subinterface 0 ipv4 address {loopback}/32",
        "set / network-instance default protocols isis instance default "
        f"net 49.0001.0000.0000.{index:04d}.00",
        "set / network-instance default protocols isis instance default "
        "interface lo0.0 passive true",
    ]
    for iface, address in interfaces:
        lines.append(
            f"set / interface {iface} subinterface 0 ipv4 address {address}"
        )
        lines.append(
            "set / network-instance default protocols isis instance default "
            f"interface {iface}.0 metric 10"
        )
    return "\n".join(lines) + "\n"


class TestCrossVendorIsis:
    """An Arista and a Nokia speaking IS-IS to each other — the
    multi-vendor capability the paper's approach is built for."""

    @pytest.fixture(scope="class")
    def net(self):
        configs = {
            "eos": isis_config("eos", 1, "2.2.2.1", [("Ethernet1", "10.0.0.0/31")]),
            "srl": nokia_isis("srl", 2, "2.2.2.2", [("ethernet-1/1", "10.0.0.1/31")]),
        }
        net = mini_net(
            configs,
            [("eos", "Ethernet1", "srl", "ethernet-1/1")],
            vendors={"srl": "nokia"},
        )
        net.converge()
        return net

    def test_adjacency_across_vendors(self, net):
        assert len(net.router("eos").isis.adjacencies) == 1
        assert len(net.router("srl").isis.adjacencies) == 1

    def test_routes_exchanged(self, net):
        eos_route = net.router("eos").rib.best(Prefix.parse("2.2.2.2/32"))
        srl_route = net.router("srl").rib.best(Prefix.parse("2.2.2.1/32"))
        assert eos_route.protocol is Protocol.ISIS
        assert srl_route.protocol is Protocol.ISIS

    def test_each_side_keeps_native_cli(self, net):
        eos_out = net.router("eos").cli("show ip route")
        srl_out = net.router("srl").cli(
            "show network-instance default route-table"
        )
        assert "I L2" in eos_out
        assert "isis" in srl_out

    def test_srl_cli_shapes(self, net):
        out = net.router("srl").cli(
            "show network-instance default protocols isis adjacency"
        )
        assert "0000.0000.0001" in out
        assert "Software Version" in net.router("srl").cli("show version")
        assert "Unknown command" in net.router("srl").cli("show fish")
