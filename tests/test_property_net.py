"""Property-based tests (hypothesis) for the net layer.

The verification engine's exhaustiveness rests entirely on this algebra
being correct, so it gets adversarial random testing: interval-set laws,
trie-vs-bruteforce LPM, CIDR decomposition, atom partitioning, and
header-space set laws.
"""

from hypothesis import given, settings, strategies as st

from repro.net.addr import MAX_IPV4, Prefix
from repro.net.headerspace import HeaderSpace, Rect
from repro.net.intervals import Interval, IntervalSet, atoms
from repro.net.trie import PrefixTrie

WIDTH = 12  # small universe so brute force is cheap
UNIVERSE = (1 << WIDTH) - 1


@st.composite
def interval_sets(draw):
    n = draw(st.integers(0, 6))
    intervals = []
    for _ in range(n):
        lo = draw(st.integers(0, UNIVERSE))
        hi = draw(st.integers(lo, UNIVERSE))
        intervals.append(Interval(lo, hi))
    return IntervalSet(intervals)


def members(s: IntervalSet) -> set:
    out = set()
    for ival in s:
        out.update(range(ival.lo, ival.hi + 1))
    return out


@st.composite
def prefixes(draw):
    length = draw(st.integers(0, 32))
    address = draw(st.integers(0, MAX_IPV4))
    return Prefix.containing(address, length)


class TestIntervalSetLaws:
    @given(interval_sets(), interval_sets())
    def test_union_matches_sets(self, a, b):
        assert members(a | b) == members(a) | members(b)

    @given(interval_sets(), interval_sets())
    def test_intersection_matches_sets(self, a, b):
        assert members(a & b) == members(a) & members(b)

    @given(interval_sets(), interval_sets())
    def test_difference_matches_sets(self, a, b):
        assert members(a - b) == members(a) - members(b)

    @given(interval_sets())
    def test_complement_involution(self, a):
        assert a.complement(WIDTH).complement(WIDTH) == a

    @given(interval_sets())
    def test_canonical_form_unique(self, a):
        rebuilt = IntervalSet(a.intervals)
        assert rebuilt.intervals == a.intervals

    @given(interval_sets(), interval_sets())
    def test_subset_consistency(self, a, b):
        assert a.issubset(b) == (members(a) <= members(b))

    @given(interval_sets())
    def test_len_matches_cardinality(self, a):
        assert len(a) == len(members(a))

    @given(interval_sets(), st.integers(0, UNIVERSE))
    def test_membership(self, a, value):
        assert (value in a) == (value in members(a))


class TestCidrDecomposition:
    @given(interval_sets())
    def test_to_prefixes_roundtrip(self, a):
        assert IntervalSet.from_prefixes(a.to_prefixes()) == a

    @given(interval_sets())
    def test_prefixes_are_disjoint(self, a):
        prefixes = a.to_prefixes()
        seen = IntervalSet.empty()
        for prefix in prefixes:
            piece = IntervalSet.from_prefix(prefix)
            assert piece.isdisjoint(seen)
            seen = seen | piece


class TestAtoms:
    @given(st.lists(interval_sets(), max_size=4))
    def test_atoms_partition_and_refine(self, sets):
        pieces = atoms(sets, width=WIDTH)
        total = IntervalSet.empty()
        for piece in pieces:
            assert not piece.is_empty()
            assert piece.isdisjoint(total)
            total = total | piece
        assert total == IntervalSet.full(WIDTH)
        for s in sets:
            for piece in pieces:
                overlap = piece & s
                assert overlap.is_empty() or overlap == piece


class TestTrieVsBruteForce:
    @settings(max_examples=50)
    @given(
        st.lists(st.tuples(prefixes(), st.integers()), max_size=20),
        st.lists(st.integers(0, MAX_IPV4), max_size=20),
    )
    def test_lpm_matches_linear_scan(self, entries, queries):
        trie = PrefixTrie()
        table = {}
        for prefix, value in entries:
            trie.insert(prefix, value)
            table[prefix] = value
        for address in queries:
            expected = None
            best_len = -1
            for prefix, value in table.items():
                if prefix.contains(address) and prefix.length > best_len:
                    best_len = prefix.length
                    expected = (prefix, value)
            assert trie.longest_match(address) == expected

    @settings(max_examples=50)
    @given(st.lists(st.tuples(prefixes(), st.integers()), max_size=20))
    def test_insert_remove_inverse(self, entries):
        trie = PrefixTrie()
        table = {}
        for prefix, value in entries:
            trie.insert(prefix, value)
            table[prefix] = value
        assert len(trie) == len(table)
        for prefix in list(table):
            assert trie.remove(prefix) == table.pop(prefix)
        assert len(trie) == 0


@st.composite
def header_spaces(draw):
    n = draw(st.integers(0, 3))
    rects = []
    for _ in range(n):
        rect = Rect()
        if draw(st.booleans()):
            lo = draw(st.integers(0, 1000))
            hi = draw(st.integers(lo, 2000))
            rect = rect.with_field(
                draw(st.sampled_from(list(__import__("repro.net.headerspace", fromlist=["Field"]).Field))),
                IntervalSet.span(lo, hi),
            )
        rects.append(rect)
    return HeaderSpace(rects)


class TestHeaderSpaceLaws:
    @settings(max_examples=40)
    @given(header_spaces(), header_spaces())
    def test_difference_disjoint_from_subtrahend(self, a, b):
        assert ((a - b) & b).is_empty()

    @settings(max_examples=40)
    @given(header_spaces(), header_spaces())
    def test_partition(self, a, b):
        # (a - b) | (a & b) == a
        rebuilt = (a - b) | (a & b)
        assert rebuilt.equivalent(a)

    @settings(max_examples=40)
    @given(header_spaces())
    def test_sample_in_space(self, a):
        packet = a.sample()
        if packet is not None:
            assert a.contains_packet(packet)
