"""Resilience-plane tests: journal, recovery, supervision, breakers.

The crash-recovery determinism tests follow the write-ahead contract:
a journal replayed after a seeded mid-job kill must yield byte-identical
answers to an uninterrupted run, because the idempotency key pins the
question and the manifest pins the forwarding content.
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.chaos import (
    EvictionStorm,
    JournalStall,
    ServiceChaos,
    ServiceFaultPlan,
    WorkerCrash,
    sampled_service_plan,
)
from repro.service import (
    BreakerBoard,
    BreakerOpenError,
    BreakerState,
    JobFailedError,
    JobJournal,
    JobLostError,
    OverloadedError,
    QuestionSpec,
    VerificationService,
    replay_journal,
)
from repro.service.frontend import ServiceFrontend, _serialize_value


def _spec(question="reachability", fp=0x1234):
    return QuestionSpec(
        question=question, params=(), snapshot="s", fingerprint=fp
    )


def _canon(value) -> str:
    """Canonical bytes of an answer for byte-identical comparison."""
    return json.dumps(_serialize_value(value), sort_keys=True, default=str)


def _await_state(board: BreakerBoard, key, state: BreakerState, timeout=2.0):
    """Wait for breaker feedback: the worker records success/failure in
    its on_done hook *after* ``job.result()`` unblocks the caller."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if board.state_of(key) is state:
            return
        time.sleep(0.005)
    assert board.state_of(key) is state


class TestJobJournal:
    def test_submit_settle_roundtrip(self, tmp_path):
        journal = JobJournal(tmp_path, fsync_batch=1)
        key, deliveries = journal.record_submit(
            _spec(), priority="interactive", timeout=None
        )
        assert deliveries == 1
        journal.record_start(key)
        journal.record_settle(key, "done")
        journal.close()
        state = replay_journal(tmp_path)
        assert state.records == 3
        assert state.pending() == []
        assert state.jobs[key].settled

    def test_unsettled_submit_stays_pending(self, tmp_path):
        journal = JobJournal(tmp_path, fsync_batch=1)
        key, _ = journal.record_submit(
            _spec(), priority="campaign", timeout=2.5
        )
        journal.record_start(key)
        journal.close()
        state = replay_journal(tmp_path)
        pending = state.pending()
        assert [job.key for job in pending] == [key]
        assert pending[0].started
        assert pending[0].priority == "campaign"
        assert pending[0].timeout == 2.5

    def test_idempotency_key_is_content_addressed(self):
        assert _spec().key() == _spec().key()
        assert _spec().key() != _spec(fp=0x9999).key()
        assert len(_spec().key()) == 16

    def test_torn_final_record_is_skipped(self, tmp_path):
        journal = JobJournal(tmp_path, fsync_batch=1)
        journal.record_submit(_spec(), priority="interactive", timeout=None)
        journal.close()
        with open(tmp_path / "journal.jsonl", "a", encoding="utf-8") as fh:
            fh.write('{"type": "submit", "key": "deadbeef", "spe')
        state = replay_journal(tmp_path)
        assert state.torn_records == 1
        assert len(state.jobs) == 1  # the torn submit never happened

    def test_redelivery_counts_accumulate(self, tmp_path):
        journal = JobJournal(tmp_path, fsync_batch=1)
        key, _ = journal.record_submit(
            _spec(), priority="interactive", timeout=None
        )
        assert journal.record_redelivery(key) == 2
        assert journal.record_redelivery(key) == 3
        journal.close()
        state = replay_journal(tmp_path)
        assert state.jobs[key].deliveries == 3

    def test_dead_letter_is_terminal(self, tmp_path):
        journal = JobJournal(tmp_path, fsync_batch=64)
        key, _ = journal.record_submit(
            _spec(), priority="interactive", timeout=None
        )
        journal.record_dead_letter(key, "exhausted", 4)
        # dead-letter flushes even with a large batch — terminal promise
        state = replay_journal(tmp_path)
        assert state.jobs[key].dead
        assert state.pending() == []
        journal.close()

    def test_stall_hook_fires_per_record(self, tmp_path):
        journal = JobJournal(tmp_path, fsync_batch=1)
        seen = []
        journal.stall_hook = seen.append
        journal.record_submit(_spec(), priority="interactive", timeout=None)
        journal.record_settle(_spec().key(), "done")
        journal.close()
        assert seen == [0, 1]


class TestCircuitBreakers:
    def _board(self, **kwargs):
        clock = {"t": 0.0}
        board = BreakerBoard(
            threshold=kwargs.pop("threshold", 3),
            cooldown_s=kwargs.pop("cooldown_s", 10.0),
            clock=lambda: clock["t"],
            **kwargs,
        )
        return board, clock

    def test_opens_after_threshold_consecutive_failures(self):
        board, _ = self._board(threshold=3)
        for _ in range(2):
            board.record("snap", ok=False)
        assert board.state_of("snap") is BreakerState.CLOSED
        board.record("snap", ok=False)
        assert board.state_of("snap") is BreakerState.OPEN
        assert not board.allow("snap")
        assert board.fast_answers == 1

    def test_success_resets_the_count(self):
        board, _ = self._board(threshold=2)
        board.record("snap", ok=False)
        board.record("snap", ok=True)
        board.record("snap", ok=False)
        assert board.state_of("snap") is BreakerState.CLOSED

    def test_half_open_probe_then_close(self):
        board, clock = self._board(threshold=1, cooldown_s=5.0)
        board.record("snap", ok=False)
        assert not board.allow("snap")
        clock["t"] = 6.0
        assert board.allow("snap")  # the single half-open probe
        assert board.state_of("snap") is BreakerState.HALF_OPEN
        assert not board.allow("snap")  # second caller must wait
        board.record("snap", ok=True)
        assert board.state_of("snap") is BreakerState.CLOSED
        assert board.allow("snap")

    def test_half_open_failure_reopens(self):
        board, clock = self._board(threshold=1, cooldown_s=5.0)
        board.record("snap", ok=False)
        clock["t"] = 6.0
        assert board.allow("snap")
        board.record("snap", ok=False)
        assert board.state_of("snap") is BreakerState.OPEN
        clock["t"] = 8.0  # the cooldown clock restarted at t=6
        assert not board.allow("snap")

    def test_release_frees_a_wedged_probe(self):
        board, clock = self._board(threshold=1, cooldown_s=5.0)
        board.record("snap", ok=False)
        clock["t"] = 6.0
        assert board.allow("snap")  # probe admitted, then never runs
        board.release("snap")
        assert board.allow("snap")  # next caller gets the probe slot

    def test_transition_hook_sees_every_edge(self):
        edges = []
        board = BreakerBoard(
            threshold=1,
            cooldown_s=0.0,
            on_transition=lambda key, before, after, failures: edges.append(
                (before.value, after.value)
            ),
        )
        board.record("snap", ok=False)
        board.allow("snap")
        board.record("snap", ok=True)
        assert edges == [
            ("closed", "open"),
            ("open", "half-open"),
            ("half-open", "closed"),
        ]

    def test_detail_payload_shape(self):
        board, _ = self._board(threshold=1)
        board.record(0x1234, ok=False)
        detail = board.detail_for(0x1234)
        assert detail["error"] == "breaker-open"
        assert detail["verdict"] == "UNKNOWN_DEGRADED"
        assert detail["state"] == "open"
        assert detail["breaker_key"] == "0x1234"


class TestServiceBreakers:
    def test_breaker_fast_fails_submissions(self):
        svc = VerificationService(
            workers=1, breaker_threshold=2, breaker_cooldown_s=60.0
        )
        svc.start()
        try:
            for n in range(2):
                job = svc.submit_callable(
                    lambda: 1 / 0, signature=("boom", n),
                    breaker_key="snap", label="boom",
                )
                with pytest.raises(JobFailedError):
                    job.result(5)
            _await_state(svc.breakers, "snap", BreakerState.OPEN)
            fast = svc.submit_callable(
                lambda: 42, signature=("fine", 0),
                breaker_key="snap", label="fine",
            )
            with pytest.raises(BreakerOpenError) as excinfo:
                fast.result(5)
            assert excinfo.value.detail["verdict"] == "UNKNOWN_DEGRADED"
            # Fast answers never reach the queue or a worker.
            assert svc.counters["jobs_submitted"] == 2
            other = svc.submit_callable(
                lambda: 7, signature=("other", 0),
                breaker_key="other-snap", label="other",
            )
            assert other.result(5).value == 7  # per-key isolation
        finally:
            svc.stop()

    def test_breaker_recloses_after_probe_success(self):
        svc = VerificationService(
            workers=1, breaker_threshold=1, breaker_cooldown_s=0.05
        )
        svc.start()
        try:
            job = svc.submit_callable(
                lambda: 1 / 0, signature=("boom",),
                breaker_key="snap", label="boom",
            )
            with pytest.raises(JobFailedError):
                job.result(5)
            _await_state(svc.breakers, "snap", BreakerState.OPEN)
            time.sleep(0.1)
            probe = svc.submit_callable(
                lambda: "ok", signature=("probe",),
                breaker_key="snap", label="probe",
            )
            assert probe.result(5).value == "ok"
            _await_state(svc.breakers, "snap", BreakerState.CLOSED)
        finally:
            svc.stop()


class TestDrainingShutdown:
    def test_drain_finishes_queued_work(self):
        svc = VerificationService(workers=1)
        svc.start()
        jobs = [
            svc.submit_callable(
                (lambda n=n: n), signature=("drainme", n), label=f"j{n}"
            )
            for n in range(4)
        ]
        counts = svc.stop(timeout=10.0)
        assert counts["rejected"] == 0
        assert [job.result(0).value for job in jobs] == [0, 1, 2, 3]

    def test_drain_timeout_rejects_instead_of_stranding(self):
        svc = VerificationService(workers=1)
        svc.start()
        gate = threading.Event()
        blocker = svc.submit_callable(
            lambda: gate.wait(5), signature=("block",), label="blocker"
        )
        queued = [
            svc.submit_callable(
                lambda: True, signature=("q", n), label=f"q{n}"
            )
            for n in range(3)
        ]
        counts = svc.stop(timeout=0.2)
        gate.set()
        assert counts["rejected"] >= 1
        rejected = 0
        for job in queued:
            try:
                job.result(1)
            except OverloadedError as exc:
                assert exc.detail["error"] == "draining"
                rejected += 1
        assert rejected == counts["rejected"]
        del blocker

    def test_draining_service_rejects_new_submissions(self):
        svc = VerificationService(workers=1)
        svc.start()
        svc.stop(timeout=2.0)
        job = svc.submit_callable(
            lambda: 1, signature=("late",), label="late"
        )
        with pytest.raises(OverloadedError) as excinfo:
            job.result(1)
        assert excinfo.value.detail["error"] == "draining"

    def test_drain_emits_obs_event(self):
        from repro.obs import tracing

        with tracing() as tracer:
            svc = VerificationService(workers=1)
            svc.start()
            svc.submit_callable(
                lambda: 1, signature=("one",), label="one"
            ).result(5)
            svc.stop(timeout=5.0)
        drains = [e for e in tracer.events if e.category == "service.drain"]
        assert len(drains) == 1
        # "settled" counts jobs finished *during* the drain window; the
        # job above settled before stop(), so only the shape is pinned.
        assert set(drains[0].detail) >= {"settled", "rejected"}
        assert drains[0].detail["rejected"] == 0


class TestServiceJournalRecovery:
    def test_recover_requeues_unsettled_question(
        self, fig2_snapshots, tmp_path
    ):
        healthy, _ = fig2_snapshots
        journal_dir = tmp_path / "journal"

        # Baseline: an undisturbed run answers the question.
        baseline_svc = VerificationService(workers=1)
        baseline_svc.start()
        baseline_svc.register_snapshot(healthy, name="net")
        baseline = _canon(
            baseline_svc.submit("reachability", snapshot="net")
            .result(60).value
        )
        baseline_svc.stop()

        # "Crash": the journal records the snapshot and an accepted
        # submission, but the service dies before the job ever runs.
        crashed = VerificationService(workers=1, journal_dir=journal_dir)
        crashed.register_snapshot(healthy, name="net")
        crashed.submit("reachability", snapshot="net")
        crashed.journal.flush()
        del crashed  # no stop(): the settle record never lands

        recovered, report = VerificationService.recover(
            journal_dir, workers=1
        )
        assert report.snapshots_recovered == 1
        assert report.jobs_requeued == 1
        assert report.jobs_dead_lettered == 0
        assert recovered.snapshots() == ["net"]
        recovered.start()
        job = recovered.submit("reachability", snapshot="net")
        replayed = _canon(job.result(60).value)
        assert replayed == baseline  # byte-identical to the clean run
        recovered.stop()
        # After the run, the journal shows the obligation settled.
        state = replay_journal(journal_dir)
        assert state.pending() == []

    def test_recover_dead_letters_exhausted_jobs(self, tmp_path):
        journal = JobJournal(tmp_path, fsync_batch=1)
        spec = _spec()
        key, _ = journal.record_submit(
            spec, priority="interactive", timeout=None
        )
        for _ in range(4):
            journal.record_redelivery(key)
        journal.close()
        service, report = VerificationService.recover(
            tmp_path, workers=1, redelivery_limit=3
        )
        assert report.jobs_requeued == 0
        assert report.jobs_dead_lettered == 1
        assert service.dead_letters[0].key == key
        assert service.dead_letters[0].deliveries == 5
        state = replay_journal(tmp_path)
        assert state.jobs[key].dead
        service.stop()

    def test_recover_tolerates_torn_tail(self, fig2_snapshots, tmp_path):
        healthy, _ = fig2_snapshots
        svc = VerificationService(workers=1, journal_dir=tmp_path)
        svc.register_snapshot(healthy, name="net")
        svc.submit("reachability", snapshot="net")
        svc.journal.flush()
        with open(tmp_path / "journal.jsonl", "a", encoding="utf-8") as fh:
            fh.write('{"type": "settle", "key"')  # torn mid-crash write
        del svc
        recovered, report = VerificationService.recover(tmp_path, workers=1)
        assert report.torn_records == 1
        assert report.jobs_requeued == 1  # the torn settle never happened
        recovered.stop()


class TestSupervisedProcessPool:
    def test_mid_job_kill_is_redelivered_deterministically(
        self, fig2_snapshots, tmp_path
    ):
        healthy, _ = fig2_snapshots

        baseline_svc = VerificationService(workers=1)
        baseline_svc.start()
        baseline_svc.register_snapshot(healthy, name="net")
        baseline = _canon(
            baseline_svc.submit("reachability", snapshot="net")
            .result(60).value
        )
        baseline_svc.stop()

        svc = VerificationService(
            workers=1,
            worker_mode="process",
            journal_dir=tmp_path,
            heartbeat_s=0.5,
        )
        svc.start()
        try:
            svc.register_snapshot(healthy, name="net")
            plan = ServiceFaultPlan(
                name="kill-first-dispatch",
                faults=(WorkerCrash(at_dispatch=1),),
            )
            with ServiceChaos(svc, plan) as chaos:
                job = svc.submit("reachability", snapshot="net")
                value = job.result(120).value
            assert [f["kind"] for f in chaos.fired] == ["worker-crash"]
            assert job.deliveries == 2  # killed once, redelivered once
            assert svc.pool.respawns >= 1
            assert _canon(value) == baseline  # identical despite the kill
            assert not svc.dead_letters  # zero accepted jobs lost
        finally:
            svc.stop()

    def test_redelivery_exhaustion_surfaces_job_lost(
        self, fig2_snapshots, tmp_path
    ):
        healthy, _ = fig2_snapshots
        svc = VerificationService(
            workers=1,
            worker_mode="process",
            journal_dir=tmp_path,
            heartbeat_s=0.5,
            redelivery_limit=0,
        )
        svc.start()
        try:
            svc.register_snapshot(healthy, name="net")
            plan = ServiceFaultPlan(
                name="kill-always", faults=(WorkerCrash(at_dispatch=1),)
            )
            with ServiceChaos(svc, plan):
                job = svc.submit("reachability", snapshot="net")
                with pytest.raises(JobLostError) as excinfo:
                    job.result(120)
            assert excinfo.value.detail["deliveries"] == 2
            assert len(svc.dead_letters) == 1
            letter = svc.dead_letters[0]
            assert letter.question == "reachability"
            state_key = letter.key
        finally:
            svc.stop()
        state = replay_journal(tmp_path)
        assert state.jobs[state_key].dead  # durable, not just in-memory

    def test_process_mode_requires_no_explicit_journal(self, fig2_snapshots):
        healthy, _ = fig2_snapshots
        svc = VerificationService(workers=1, worker_mode="process")
        assert svc.journal is not None  # scratch manifest auto-created
        svc.start()
        try:
            svc.register_snapshot(healthy, name="net")
            job = svc.submit("detectLoops", snapshot="net")
            assert job.result(120).value is not None
        finally:
            svc.stop()


class TestServiceChaosPlan:
    def test_sampled_plan_is_deterministic(self):
        first = sampled_service_plan(seed=7, crashes=2, stalls=1, storms=1)
        second = sampled_service_plan(seed=7, crashes=2, stalls=1, storms=1)
        assert first == second
        assert first != sampled_service_plan(seed=8, crashes=2, stalls=1,
                                             storms=1)

    def test_describe_shape(self):
        plan = ServiceFaultPlan(
            faults=(
                WorkerCrash(at_dispatch=3),
                JournalStall(at_record=5),
                EvictionStorm(at_submit=2),
            )
        )
        described = plan.describe()
        assert [f["kind"] for f in described["faults"]] == [
            "worker-crash", "journal-stall", "eviction-storm",
        ]

    def test_worker_crash_requires_process_pool(self):
        svc = VerificationService(workers=1)  # thread mode
        plan = ServiceFaultPlan(faults=(WorkerCrash(at_dispatch=1),))
        with pytest.raises(ValueError, match="process"):
            ServiceChaos(svc, plan).arm()

    def test_eviction_storm_fires_on_submit_index(self, fig2_snapshots):
        healthy, _ = fig2_snapshots
        svc = VerificationService(workers=1)
        svc.start()
        try:
            svc.register_snapshot(healthy, name="net")
            plan = ServiceFaultPlan(
                faults=(EvictionStorm(at_submit=1, evict=1),)
            )
            with ServiceChaos(svc, plan) as chaos:
                job = svc.submit("reachability", snapshot="net")
                # The storm evicted the snapshot at submit; the retry
                # path re-resolves or fails structurally — either way
                # the submission is never silently lost.
                try:
                    job.result(60)
                except JobFailedError:
                    pass
            assert [f["kind"] for f in chaos.fired] == ["eviction-storm"]
            assert svc.store.stats()["evictions"] >= 1
        finally:
            svc.stop()


class TestHealthAndFrontend:
    def test_health_ready_flips_on_drain(self):
        svc = VerificationService(workers=1)
        svc.start()
        health = svc.health()
        assert health["live"] and health["ready"]
        assert not health["draining"]
        svc.stop()
        health = svc.health()
        assert health["live"] and not health["ready"]
        assert health["draining"]

    def test_frontend_health_and_dead_letter_ops(self):
        svc = VerificationService(workers=1)
        svc.start()
        try:
            frontend = ServiceFrontend(svc)
            response, keep = frontend.handle({"op": "health"})
            assert keep and response["ok"] and response["ready"]
            svc._dead_letter(
                key="abcd", reason="test", deliveries=4,
                question="reachability",
            )
            response, _ = frontend.handle({"op": "dead-letters"})
            assert response["ok"]
            assert response["dead_letters"][0]["key"] == "abcd"
            assert response["dead_letters"][0]["deliveries"] == 4
        finally:
            svc.stop()

    def test_stats_carries_resilience_surfaces(self, tmp_path):
        svc = VerificationService(workers=1, journal_dir=tmp_path)
        svc.start()
        try:
            stats = svc.stats()
            assert stats["worker_mode"] == "thread"
            assert stats["journal"]["dir"] == str(tmp_path)
            assert stats["breakers"]["keys"] == 0
            assert stats["dead_letter_count"] == 0
        finally:
            svc.stop()
