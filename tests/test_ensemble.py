"""repro.ensemble: verdict algebra, outcome dedup, oracle equivalence.

The correctness anchor throughout is the brute-force per-run oracle:
whatever the deduped fold answers must match verifying every member
independently, row for row, witnesses included.
"""

import json

import pytest

from repro.chaos import sampled_plan
from repro.core.multirun import explore_nondeterminism
from repro.core.pipeline import ModelFreeBackend
from repro.ensemble import (
    HOLDS_ALWAYS,
    HOLDS_SOMETIMES,
    MAX_WITNESSES,
    NEVER,
    EnsembleRunner,
    EnsembleWitness,
    RowObservation,
    Waypoint,
    brute_force_verdicts,
    default_ensemble_invariants,
    fold,
    fold_observations,
    fold_records,
    temporal_invariant_names,
)
from repro.obs import ConvergenceTimeline, tracing
from repro.protocols.timers import FAST_TIMERS
from repro.verify.engine import clear_engine_cache


def _obs(holds, weight=1, seed=0, plan="", fingerprint=None, **kw):
    return RowObservation(
        holds=holds,
        weight=weight,
        witness=EnsembleWitness(
            seed=seed,
            plan=plan,
            fingerprint=fingerprint if fingerprint is not None else seed,
            **kw,
        ),
    )


class TestVerdictAlgebra:
    def test_all_hold_is_holds_always(self):
        verdict = fold("row", [_obs(True, 3, seed=0), _obs(True, 1, seed=3)])
        assert verdict.verdict == HOLDS_ALWAYS
        assert (verdict.holds, verdict.total) == (4, 4)
        assert verdict.witnesses == ()

    def test_none_hold_is_never(self):
        verdict = fold("row", [_obs(False, 2, seed=0), _obs(False, 1, seed=2)])
        assert verdict.verdict == NEVER
        assert (verdict.holds, verdict.total) == (0, 3)
        assert len(verdict.witnesses) == 2

    def test_mixed_is_holds_sometimes_with_witness(self):
        verdict = fold(
            "row",
            [_obs(True, 3, seed=0), _obs(False, 1, seed=5, plan="crash")],
        )
        assert verdict.verdict == HOLDS_SOMETIMES
        assert (verdict.holds, verdict.total) == (3, 4)
        witness = verdict.witnesses[0]
        assert (witness.seed, witness.plan) == (5, "crash")
        assert "seed 5 + crash" in str(verdict)

    def test_multiplicity_weights_the_denominator(self):
        # 7 members collapsed into 2 outcomes still answer out of 7.
        verdict = fold("row", [_obs(True, 6, seed=0), _obs(False, 1, seed=6)])
        assert (verdict.holds, verdict.total) == (6, 7)

    def test_witnesses_dedup_by_fingerprint_keeping_lowest_member(self):
        # Three violating runs, two distinct outcomes: one witness per
        # outcome, each the lowest (seed, plan) member.
        verdict = fold(
            "row",
            [
                _obs(False, seed=4, fingerprint=0xA),
                _obs(False, seed=1, fingerprint=0xA),
                _obs(False, seed=2, fingerprint=0xB),
            ],
        )
        assert [w.seed for w in verdict.witnesses] == [1, 2]

    def test_witness_cap(self):
        observations = [
            _obs(False, seed=n, fingerprint=n) for n in range(10)
        ] + [_obs(True, seed=99)]
        verdict = fold("row", observations)
        assert len(verdict.witnesses) == MAX_WITNESSES
        assert [w.seed for w in verdict.witnesses] == [0, 1, 2, 3]

    def test_fold_observations_sorted_by_row_name(self):
        verdicts = fold_observations(
            {"b": [_obs(True)], "a": [_obs(False)], "c": [_obs(True)]}
        )
        assert [v.invariant for v in verdicts] == ["a", "b", "c"]

    def test_temporal_witness_interval_round_trips(self):
        verdict = fold(
            "temporal:no-transient-loop",
            [_obs(False, seed=1, t_start=3.5, t_end=9.0), _obs(True, seed=0)],
        )
        witness = verdict.to_dict()["witnesses"][0]
        assert (witness["t_start"], witness["t_end"]) == (3.5, 9.0)
        assert "[3.5, 9.0)s" in str(verdict)

    def test_temporal_names_resolution(self):
        assert temporal_invariant_names(None) == ()
        names = temporal_invariant_names(True)
        assert "no-transient-loop" in names and "blackhole-window" in names


@pytest.fixture(scope="module")
def fig3_runner(fig3):
    runner = EnsembleRunner(
        fig3.topology,
        seeds=(0, 1, 2, 3),
        timers=FAST_TIMERS,
        quiet_period=5.0,
    )
    runner.run(workers=1)
    return runner


class TestEnsembleRunner:
    def test_runs_and_dedup(self, fig3_runner):
        report = fold_records(
            fig3_runner.last_records,
            invariants=fig3_runner.invariants,
            engine_of=fig3_runner.store.engine,
        )
        assert report.runs == 4
        # Fig. 3 has no ordering-dependent tiebreaks: one outcome.
        assert report.deterministic
        assert report.outcomes[0].multiplicity == 4
        assert [s for s, _ in report.outcomes[0].members] == [0, 1, 2, 3]
        assert all(v.verdict == HOLDS_ALWAYS for v in report.verdicts)
        assert not report.unstable

    def test_oracle_equivalence_plain(self, fig3_runner):
        report = fold_records(
            fig3_runner.last_records,
            invariants=fig3_runner.invariants,
            engine_of=fig3_runner.store.engine,
        )
        oracle = brute_force_verdicts(
            fig3_runner.last_records, invariants=fig3_runner.invariants
        )
        assert report.verdicts == oracle

    def test_repeated_runs_report_byte_identical(self, fig3):
        def one_report():
            runner = EnsembleRunner(
                fig3.topology,
                seeds=(0, 1, 2),
                timers=FAST_TIMERS,
                quiet_period=5.0,
            )
            return runner.run(workers=1)

        first, second = one_report(), one_report()
        assert json.dumps(first.to_dict()) == json.dumps(second.to_dict())

    def test_engine_builds_bounded_by_distinct_outcomes(self, fig3):
        clear_engine_cache()
        runner = EnsembleRunner(
            fig3.topology,
            seeds=(0, 1, 2, 3),
            timers=FAST_TIMERS,
            quiet_period=5.0,
        )
        with tracing() as tracer:
            report = runner.run(workers=1)
        builds = tracer.counters.get("verify.engine_builds", 0)
        assert builds <= report.distinct < report.runs
        assert tracer.counters["ensemble.dedup_hits"] == (
            report.runs - report.distinct
        )
        clear_engine_cache()

    def test_waypoint_invariant_rows(self, fig3_runner):
        snapshot = fig3_runner.last_records[0].snapshot
        via = sorted(snapshot.afts)[1]  # middle of the line: always on path
        report = fold_records(
            fig3_runner.last_records,
            invariants=[Waypoint("3.3.3.1", via)],
            engine_of=fig3_runner.store.engine,
        )
        [verdict] = report.verdicts
        assert verdict.invariant == f"waypoint:3.3.3.1-via-{via}"
        assert verdict.verdict == HOLDS_ALWAYS

    def test_parallel_matches_sequential(self, fig3):
        runner = EnsembleRunner(
            fig3.topology,
            seeds=(0, 1, 2),
            timers=FAST_TIMERS,
            quiet_period=5.0,
        )
        sequential = runner.run(workers=1)
        parallel = runner.run(workers=2)
        assert parallel.verdicts == sequential.verdicts
        assert parallel.distinct == sequential.distinct


class TestChaosCrossedEnsemble:
    @pytest.fixture(scope="class")
    def crossed(self, fig3):
        from repro.chaos import FaultPlan, LinkLoss, PodCrash

        # Two genuinely different failure modes: a dead r2-r3 link
        # (routes to r3 withdrawn — real False rows, no degradation)
        # and an unrecovered r3 crash (partial snapshot — rows into r3
        # become unprovable). The fold must keep the two apart.
        plans = [
            None,
            FaultPlan(
                name="cut-r2-r3",
                faults=(
                    LinkLoss(
                        a="r2", z="r3", drop_rate=1.0, at=0.0, duration=1e9
                    ),
                ),
            ),
            FaultPlan(
                name="crash-r3", faults=(PodCrash(node="r3", at=1000.0),)
            ),
        ]
        runner = EnsembleRunner(
            fig3.topology,
            seeds=(0, 1),
            plans=plans,
            timers=FAST_TIMERS,
            quiet_period=5.0,
        )
        report = runner.run(workers=1)
        return runner, report

    def test_matrix_covers_seed_plan_cross(self, crossed):
        runner, report = crossed
        assert report.runs == 6
        members = [
            (record.seed, record.plan_name)
            for record in runner.last_records
        ]
        assert members == [
            (0, ""), (0, "cut-r2-r3"), (0, "crash-r3"),
            (1, ""), (1, "cut-r2-r3"), (1, "crash-r3"),
        ]
        assert report.distinct >= 3

    def test_oracle_equivalence_chaos_crossed(self, crossed):
        runner, report = crossed
        oracle = brute_force_verdicts(
            runner.last_records, invariants=runner.invariants
        )
        assert report.verdicts == oracle

    def test_sometimes_witness_names_the_plan(self, crossed):
        _, report = crossed
        unstable = report.unstable
        assert unstable, "a severed link must destabilize some invariant"
        for verdict in unstable:
            assert verdict.verdict == HOLDS_SOMETIMES
            assert verdict.witnesses, str(verdict)
            assert all(
                w.plan for w in verdict.witnesses
            ), "violations must be pinned on the faulted members"
        # The severed link shows up as real unreachability, attributed
        # to the cut plan, never to the crash (whose rows are degraded).
        by_name = {v.invariant: v for v in report.verdicts}
        cut_row = by_name["reach:r1->r3"]
        assert cut_row.verdict == HOLDS_SOMETIMES
        assert {w.plan for w in cut_row.witnesses} == {"cut-r2-r3"}

    def test_degraded_rows_excluded_from_denominators(self, crossed):
        # Pairs whose proof involves the crashed node answer
        # UNKNOWN_DEGRADED in the crash outcomes — those outcomes must
        # be absent from the pair's denominator, not counted as False.
        _, report = crossed
        answering_weight = sum(
            o.multiplicity for o in report.outcomes if not o.degraded
        )
        assert answering_weight < report.runs
        by_name = {v.invariant: v for v in report.verdicts}
        assert by_name["reach:r1->r3"].total == answering_weight


class TestTemporalEnsemble:
    def test_oracle_equivalence_with_temporal_rows(self, fig3):
        runner = EnsembleRunner(
            fig3.topology,
            seeds=(0, 1),
            temporal=True,
            timers=FAST_TIMERS,
            quiet_period=5.0,
        )
        report = runner.run(workers=1)
        names = temporal_invariant_names(True)
        assert set(report.temporal_invariants) == {
            f"temporal:{name}" for name in names
        }
        by_name = {v.invariant: v for v in report.verdicts}
        for name in names:
            row = by_name[f"temporal:{name}"]
            # Temporal rows fold per member run, never per outcome.
            assert row.total == report.runs
        oracle = brute_force_verdicts(
            runner.last_records,
            invariants=runner.invariants,
            temporal_names=names,
        )
        assert report.verdicts == oracle


class TestMultirunWrapper:
    def test_deprecation_warning(self, fig3):
        backend = ModelFreeBackend(
            fig3.topology, timers=FAST_TIMERS, quiet_period=5.0
        )
        with pytest.warns(DeprecationWarning, match="EnsembleRunner"):
            explore_nondeterminism(backend, seeds=(0,))

    def test_fingerprint_short_circuit_skips_identical_pairs(self, fig3):
        backend = ModelFreeBackend(
            fig3.topology, timers=FAST_TIMERS, quiet_period=5.0
        )
        with tracing() as tracer, pytest.warns(DeprecationWarning):
            result = explore_nondeterminism(backend, seeds=(0, 1, 2))
        assert result.deterministic
        # All 3 pairs share one fingerprint: every diff short-circuits.
        assert tracer.counters["multirun.fingerprint_skips"] == 3
        assert set(result.divergences) == {(0, 1), (0, 2), (1, 2)}


class TestServiceEnsembleOp:
    def test_frontend_ensemble_op(self, fig3):
        from repro.service.frontend import ServiceFrontend
        from repro.service.service import VerificationService

        backend = ModelFreeBackend(
            fig3.topology, timers=FAST_TIMERS, quiet_period=5.0
        )
        service = VerificationService(workers=1).start()
        try:
            for seed in (0, 1):
                snapshot = backend.run(
                    None, seed=seed, snapshot_name=f"member-{seed}"
                )
                service.register_snapshot(snapshot)
            frontend = ServiceFrontend(service)
            response, keep = frontend.handle({"op": "ensemble"})
            assert keep and response["ok"]
            report = response["report"]
            assert report["runs"] == 2
            assert report["distinct_outcomes"] == 1
            assert report["verdict_counts"][HOLDS_SOMETIMES] == 0
            # Same members, same content: the job must coalesce/cache.
            again, _ = frontend.handle({"op": "ensemble"})
            assert again["cached"]
            # Unknown member snapshot surfaces as an error, not a crash.
            bad, keep = frontend.handle(
                {"op": "ensemble", "snapshots": ["missing"]}
            )
            assert keep and not bad["ok"]
        finally:
            service.stop()


class TestEnsembleTimeline:
    def test_timeline_ensemble_section(self, fig3_runner):
        with tracing() as tracer:
            fold_records(
                fig3_runner.last_records,
                invariants=[],
                engine_of=None,
            )
            # A synthetic unstable verdict event exercises the witness
            # column without needing a genuinely racy topology.
            from repro.obs import bus

            bus.ACTIVE.emit(
                "ensemble.verdict",
                0.0,
                invariant="reach:r1->r3",
                verdict=HOLDS_SOMETIMES,
                holds=3,
                total=4,
                witness_seed=2,
                witness_plan="crash",
            )
        timeline = ConvergenceTimeline.from_tracer(tracer)
        assert len(timeline.ensemble_outcomes) == 1
        assert len(timeline.ensemble_verdicts) == 1
        text = timeline.render()
        assert "Ensemble (distinct converged states):" in text
        assert "Unstable ensemble verdicts:" in text
        assert "seed 2 + crash" in text
        # Witness events must not fabricate device rows.
        assert "reach:r1->r3" not in timeline.devices


class TestChaosSeeds:
    def test_run_chaos_seed_sweep(self, fig3):
        from repro.chaos import run_chaos

        nodes = sorted(spec.name for spec in fig3.topology.nodes)
        plan = sampled_plan(nodes, seed=1, intensity=2, crash=False)
        report = run_chaos(
            fig3.topology,
            plan,
            seeds=(0, 1),
            timers=FAST_TIMERS,
            quiet_period=5.0,
        )
        assert report.ensemble["seeds"] == [0, 1]
        assert set(report.ensemble["per_seed_stability"]) == {"0", "1"}
        assert report.ensemble["distinct_faulted_outcomes"] >= 1
        assert 0.0 <= report.stability <= 1.0
        assert "ensemble" in report.to_dict()

    def test_single_seed_report_unchanged(self, fig3):
        from repro.chaos import run_chaos

        nodes = sorted(spec.name for spec in fig3.topology.nodes)
        plan = sampled_plan(nodes, seed=1, intensity=2, crash=False)
        report = run_chaos(
            fig3.topology, plan, timers=FAST_TIMERS, quiet_period=5.0
        )
        assert report.ensemble == {}
        assert "ensemble" not in report.to_dict()


class TestCampaignEnsemble:
    def test_run_ensemble_folds_scenarios(self, fig3):
        from repro.whatif import WhatIfCampaign, single_link_failures

        scenarios = list(single_link_failures(fig3.topology))[:1]
        campaign = WhatIfCampaign(
            fig3.topology,
            scenarios,
            timers=FAST_TIMERS,
            quiet_period=5.0,
        )
        result = campaign.run_ensemble(seeds=(0, 1))
        assert len(result.reports) == 2
        assert campaign.seed == 0  # restored after the sweep
        [verdict] = result.verdicts
        assert verdict.invariant == f"harmless:{scenarios[0].name}"
        assert verdict.total == 2
        if verdict.verdict != HOLDS_ALWAYS:
            assert verdict.witnesses


class TestEnsembleCli:
    def test_cli_exit_zero_on_stable(self, capsys):
        from repro.cli import main

        code = main(["ensemble", "--corpus", "fig3", "--seeds", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "distinct outcome(s)" in out
        assert "holds-always" in out

    def test_cli_json_report(self, tmp_path, capsys):
        from repro.cli import main

        out_path = tmp_path / "ensemble.json"
        code = main(
            [
                "ensemble", "--corpus", "fig3", "--seeds", "1,3",
                "--json", str(out_path),
            ]
        )
        assert code == 0
        payload = json.loads(out_path.read_text())
        assert payload["seeds"] == [1, 3]
        assert payload["runs"] == 2
        assert payload["verdicts"]
        capsys.readouterr()

    def test_cli_seed_spec_rejected(self):
        from repro.cli import _parse_seeds

        assert _parse_seeds("4") == (0, 1, 2, 3)
        assert _parse_seeds("1,5,9") == (1, 5, 9)
        with pytest.raises(SystemExit):
            _parse_seeds("three")
