"""Pybatfish-style frontend tests."""

import pytest

from repro.pybf.answer import Frame
from repro.pybf.session import Session, SessionError


@pytest.fixture()
def session(fig3_emulated, fig3_model):
    bf = Session()
    bf.init_snapshot(fig3_emulated[1], name="emulated")
    bf.init_snapshot(fig3_model[1], name="model")
    return bf


class TestSessionManagement:
    def test_init_sets_current(self, fig3_emulated):
        bf = Session()
        bf.init_snapshot(fig3_emulated[1], name="x")
        assert bf.get_snapshot().name == fig3_emulated[1].name

    def test_duplicate_name_rejected(self, session, fig3_emulated):
        with pytest.raises(SessionError):
            session.init_snapshot(fig3_emulated[1], name="emulated")

    def test_overwrite_allowed(self, session, fig3_emulated):
        session.init_snapshot(fig3_emulated[1], name="emulated", overwrite=True)

    def test_set_unknown_snapshot(self, session):
        with pytest.raises(SessionError):
            session.set_snapshot("ghost")

    def test_delete_snapshot(self, session):
        session.delete_snapshot("model")
        assert session.list_snapshots() == ["emulated"]

    def test_delete_unknown_snapshot_errors(self, session):
        with pytest.raises(SessionError, match="ghost"):
            session.delete_snapshot("ghost")

    def test_empty_session_errors(self):
        bf = Session()
        with pytest.raises(SessionError):
            bf.get_snapshot()

    def test_replacing_snapshot_invalidates_engine(
        self, fig3_emulated, fig3_model
    ):
        """Re-initializing a name must drop the pinned engine: answers
        after the overwrite have to reflect the new forwarding state."""
        emulated = fig3_emulated[1]
        model = fig3_model[1]
        bf = Session()
        bf.init_snapshot(emulated, name="x")
        before = bf.get_engine("x")
        # Content equality, not object identity: the module-level
        # engine cache may serve an engine built from an equal-content
        # dataplane elsewhere in the test session.
        assert (
            before.dataplane.fib_fingerprint()
            == emulated.dataplane.fib_fingerprint()
        )
        bf.init_snapshot(model, name="x", overwrite=True)
        after = bf.get_engine("x")
        assert after is not before
        assert (
            after.dataplane.fib_fingerprint()
            == model.dataplane.fib_fingerprint()
        )


class TestQuestions:
    def test_routes_question(self, session):
        answer = session.q.routes(nodes="r2").answer(snapshot="emulated")
        frame = answer.frame()
        prefixes = frame.column("Prefix")
        assert "2.2.2.1/32" in prefixes
        assert all(row["Node"] == "r2" for row in frame)

    def test_reachability_success(self, session):
        answer = session.q.reachability(
            startLocation="r2", dst="2.2.2.1/32"
        ).answer(snapshot="emulated")
        assert len(answer) == 1
        assert answer.frame().rows[0]["Dispositions"] == "accepted"

    def test_reachability_failure_filter(self, session):
        answer = session.q.reachability(
            startLocation="r2", dst="2.2.2.1/32", actions="FAILURE"
        ).answer(snapshot="model")
        assert len(answer) == 1
        assert "no-route" in answer.frame().rows[0]["Dispositions"]

    def test_traceroute(self, session):
        answer = session.q.traceroute(
            startLocation="r3", dst="2.2.2.1"
        ).answer(snapshot="emulated")
        row = answer.frame().rows[0]
        assert row["Disposition"] == "accepted"
        assert row["Hops"] == 3

    def test_differential_reachability(self, session):
        answer = session.q.differentialReachability().answer(
            snapshot="model", reference_snapshot="emulated"
        )
        rows = answer.frame().rows
        assert any(
            row["Ingress"] == "r2" and row["Regressed"] for row in rows
        )
        assert "regressions" in answer.summary

    def test_layer3_edges(self, session):
        answer = session.q.layer3Edges().answer(snapshot="emulated")
        assert len(answer) == 2  # two links in the line

    def test_model_snapshot_missing_edge(self, session):
        """The 'missing L3 edge' failure mode, visible via the query."""
        answer = session.q.layer3Edges().answer(snapshot="model")
        assert len(answer) == 1  # r1's edge is gone in the model

    def test_detect_loops_clean(self, session):
        answer = session.q.detectLoops().answer(snapshot="emulated")
        assert len(answer) == 0


class TestFrame:
    def test_filter_and_head(self):
        frame = Frame(["a"], [{"a": i} for i in range(10)])
        assert len(frame.filter(lambda r: r["a"] % 2 == 0)) == 5
        assert len(frame.head(3)) == 3

    def test_to_string_renders_table(self):
        frame = Frame(["col"], [{"col": "value"}])
        text = frame.to_string()
        assert "col" in text and "value" in text

    def test_to_string_truncates(self):
        frame = Frame(["col"], [{"col": "x" * 100}])
        assert "…" in frame.to_string(max_width=10)

    def test_empty_frame(self):
        assert Frame(["col"]).to_string() == "(no rows)"


class TestDifferentialRoutes:
    def test_identical_snapshots_empty(self, session):
        answer = session.q.routes().answer(
            snapshot="emulated", reference_snapshot="emulated"
        )
        assert len(answer) == 0

    def test_backend_fib_differences_surface(self, session):
        answer = session.q.routes(nodes="r2").answer(
            snapshot="model", reference_snapshot="emulated"
        )
        rows = answer.frame().rows
        # The model lost r2's route to r1's loopback.
        assert any(
            row["Prefix"] == "2.2.2.1/32"
            and row["Snapshot_Status"] == "ONLY_IN_REFERENCE"
            for row in rows
        )

    def test_changed_entries_carry_reference_hops(self, session):
        answer = session.q.routes().answer(
            snapshot="model", reference_snapshot="emulated"
        )
        for row in answer.frame().rows:
            if row["Snapshot_Status"] == "CHANGED":
                assert "Reference_Next_Hops" in row


class TestGnmiCapabilities:
    def test_capabilities_models(self, fig3_emulated):
        from repro.gnmi.server import GnmiServer

        backend, _snapshot = fig3_emulated
        server = GnmiServer(backend.last_run.deployment.routers["r1"])
        capabilities = server.capabilities()
        names = {m["name"] for m in capabilities["supported-models"]}
        assert "openconfig-aft" in names
        assert capabilities["supported-encodings"] == ["JSON_IETF"]
