"""Property-based tests for protocol-layer invariants."""

import heapq

import networkx
from hypothesis import given, settings, strategies as st

from repro.device.routing_policy import (
    PrefixList,
    PrefixListEntry,
    RouteMap,
    RouteMapClause,
    MatchResult,
)
from repro.gnmi.paths import parse_path
from repro.net.addr import MAX_IPV4, Prefix, parse_ipv4
from repro.protocols.bgp_attrs import (
    BgpPath,
    Origin,
    PathAttributes,
    best_path,
    multipath_set,
)


@st.composite
def bgp_paths(draw):
    return BgpPath(
        attrs=PathAttributes(
            next_hop=draw(st.integers(1, MAX_IPV4)),
            as_path=tuple(
                draw(st.lists(st.integers(1, 65535), max_size=4))
            ),
            origin=draw(st.sampled_from(list(Origin))),
            med=draw(st.integers(0, 100)),
            local_pref=draw(st.one_of(st.none(), st.integers(0, 500))),
        ),
        from_ebgp=draw(st.booleans()),
        peer_ip=draw(st.integers(1, MAX_IPV4)),
        peer_router_id=draw(st.integers(1, MAX_IPV4)),
        is_local=False,
    )


def flat_metric(_next_hop):
    return 7


class TestDecisionProcessProperties:
    @settings(max_examples=100)
    @given(st.lists(bgp_paths(), min_size=1, max_size=8))
    def test_best_is_member_and_deterministic(self, paths):
        first = best_path(paths, flat_metric)
        second = best_path(list(reversed(paths)), flat_metric)
        assert first in paths
        assert first == second  # input order must not matter

    @settings(max_examples=100)
    @given(st.lists(bgp_paths(), min_size=1, max_size=8))
    def test_best_dominates_on_local_pref(self, paths):
        best = best_path(paths, flat_metric)
        assert best is not None
        top = max(p.attrs.effective_local_pref for p in paths)
        assert best.attrs.effective_local_pref == top

    @settings(max_examples=100)
    @given(st.lists(bgp_paths(), min_size=1, max_size=8),
           st.integers(1, 8))
    def test_multipath_contains_best_and_respects_cap(self, paths, cap):
        chosen = multipath_set(paths, flat_metric, maximum_paths=cap)
        best = best_path(paths, flat_metric)
        assert chosen[0] == best
        assert len(chosen) <= cap
        assert len({id(p) for p in chosen}) == len(chosen)

    @settings(max_examples=60)
    @given(st.lists(bgp_paths(), min_size=2, max_size=8))
    def test_removing_best_promotes_another(self, paths):
        best = best_path(paths, flat_metric)
        rest = [p for p in paths if p is not best]
        runner_up = best_path(rest, flat_metric)
        if rest:
            assert runner_up in rest


@st.composite
def prefix_list_entries(draw):
    length = draw(st.integers(0, 24))
    network = draw(st.integers(0, MAX_IPV4))
    prefix = Prefix.containing(network, length)
    ge = draw(st.one_of(st.none(), st.integers(length, 32)))
    le_floor = ge if ge is not None else length
    le = draw(st.one_of(st.none(), st.integers(le_floor, 32)))
    return PrefixListEntry(
        seq=draw(st.integers(1, 1000)),
        permit=draw(st.booleans()),
        prefix=prefix,
        ge=ge,
        le=le,
    )


@st.composite
def candidate_prefixes(draw):
    length = draw(st.integers(0, 32))
    return Prefix.containing(draw(st.integers(0, MAX_IPV4)), length)


class TestPrefixListProperties:
    @settings(max_examples=100)
    @given(prefix_list_entries(), candidate_prefixes())
    def test_match_implies_containment_and_length_band(self, entry, candidate):
        if entry.matches(candidate):
            assert entry.prefix.contains_prefix(candidate)
            lo = entry.ge if entry.ge is not None else entry.prefix.length
            hi = entry.le if entry.le is not None else (
                32 if entry.ge is not None else entry.prefix.length
            )
            assert lo <= candidate.length <= hi

    @settings(max_examples=60)
    @given(st.lists(prefix_list_entries(), max_size=6), candidate_prefixes())
    def test_first_match_semantics(self, entries, candidate):
        plist = PrefixList("P")
        for entry in entries:
            plist.add(entry)
        verdict = plist.permits(candidate)
        expected = False
        for entry in sorted(entries, key=lambda e: e.seq):
            if entry.matches(candidate):
                expected = entry.permit
                break
        assert verdict == expected


class TestRouteMapProperties:
    @settings(max_examples=60)
    @given(
        st.lists(st.integers(1, 100), min_size=1, max_size=5, unique=True),
        candidate_prefixes(),
    )
    def test_lowest_matching_seq_wins(self, seqs, prefix):
        route_map = RouteMap("RM")
        for seq in seqs:
            route_map.add(
                RouteMapClause(seq=seq, permit=True, set_med=seq)
            )
        attrs = PathAttributes(next_hop=1)
        verdict, updated = route_map.evaluate(prefix, attrs, {})
        assert verdict is MatchResult.PERMIT
        assert updated.med == min(seqs)


class TestSpfAgainstNetworkx:
    """The emulated IS-IS SPF must agree with networkx's Dijkstra."""

    @settings(max_examples=30, deadline=None)
    @given(st.data())
    def test_distances_match(self, data):
        n = data.draw(st.integers(2, 8))
        nodes = [f"n{i}" for i in range(n)]
        edges = {}
        for i in range(1, n):
            j = data.draw(st.integers(0, i - 1))
            weight = data.draw(st.integers(1, 20))
            edges[(nodes[i], nodes[j])] = weight
        extra = data.draw(st.integers(0, n))
        for _ in range(extra):
            a = data.draw(st.sampled_from(nodes))
            b = data.draw(st.sampled_from(nodes))
            if a != b and (a, b) not in edges and (b, a) not in edges:
                edges[(a, b)] = data.draw(st.integers(1, 20))

        # Feed the same graph to our IS-IS-style Dijkstra (via a fake
        # LSDB) and to networkx.
        from repro.protocols.isis import IsisInstance, Lsp

        lsdb = {}
        neighbor_map = {node: [] for node in nodes}
        for (a, b), weight in edges.items():
            neighbor_map[a].append((b, weight))
            neighbor_map[b].append((a, weight))
        for node in nodes:
            lsdb[node] = Lsp(
                system_id=node,
                sequence=1,
                neighbors=tuple(sorted(neighbor_map[node])),
                prefixes=(),
            )

        instance = IsisInstance.__new__(IsisInstance)
        instance.lsdb = lsdb
        instance.system_id = nodes[0]
        distance, _first = IsisInstance._dijkstra(instance)

        graph = networkx.Graph()
        for (a, b), weight in edges.items():
            graph.add_edge(a, b, weight=weight)
        expected = networkx.single_source_dijkstra_path_length(
            graph, nodes[0], weight="weight"
        )
        assert {k: v for k, v in distance.items()} == dict(expected)


class TestGnmiPathProperties:
    @settings(max_examples=100)
    @given(
        st.lists(
            st.tuples(
                st.from_regex(r"[a-z][a-z0-9-]{0,10}", fullmatch=True),
                st.lists(
                    st.tuples(
                        st.from_regex(r"[a-z][a-z0-9-]{0,6}", fullmatch=True),
                        st.from_regex(r"[a-zA-Z0-9./-]{1,10}", fullmatch=True),
                    ),
                    max_size=2,
                ),
            ),
            min_size=1,
            max_size=5,
        )
    )
    def test_format_parse_roundtrip(self, elements):
        text = "/" + "/".join(
            name + "".join(f"[{k}={v}]" for k, v in keys)
            for name, keys in elements
        )
        path = parse_path(text)
        assert str(path) == text
        assert parse_path(str(path)) == path
