"""Tests for RIB selection, recursive resolution, and FIB maintenance."""

from repro.net.addr import Prefix, parse_ipv4
from repro.rib.fib import FibAction
from repro.rib.rib import Rib
from repro.rib.route import NextHop, Protocol, Route


def connected(prefix, iface):
    return Route(
        prefix=Prefix.parse(prefix),
        protocol=Protocol.CONNECTED,
        next_hops=(NextHop(interface=iface),),
    )


def local(address, iface):
    return Route(
        prefix=Prefix.parse(address + "/32"),
        protocol=Protocol.LOCAL,
        next_hops=(NextHop(interface=iface),),
    )


def isis(prefix, via_ip, iface, metric=10):
    return Route(
        prefix=Prefix.parse(prefix),
        protocol=Protocol.ISIS,
        next_hops=(NextHop(ip=parse_ipv4(via_ip), interface=iface),),
        metric=metric,
    )


def bgp(prefix, next_hop, internal=True):
    return Route(
        prefix=Prefix.parse(prefix),
        protocol=Protocol.BGP_INTERNAL if internal else Protocol.BGP_EXTERNAL,
        next_hops=(NextHop(ip=parse_ipv4(next_hop)),),
    )


class TestSelection:
    def test_admin_distance_ordering(self):
        rib = Rib()
        rib.install(isis("10.0.0.0/24", "192.168.0.1", "Ethernet1"))
        rib.install(
            Route(
                prefix=Prefix.parse("10.0.0.0/24"),
                protocol=Protocol.STATIC,
                next_hops=(NextHop(ip=parse_ipv4("192.168.0.9"), interface="Ethernet2"),),
            )
        )
        best = rib.best(Prefix.parse("10.0.0.0/24"))
        assert best.protocol is Protocol.STATIC

    def test_local_beats_connected_for_own_address(self):
        rib = Rib()
        rib.install(connected("2.2.2.2/32", "Loopback0"))
        rib.install(local("2.2.2.2", "Loopback0"))
        entry = rib.fib.lookup(parse_ipv4("2.2.2.2"))
        assert entry.action is FibAction.RECEIVE

    def test_metric_breaks_same_protocol_tie(self):
        rib = Rib()
        rib.install(isis("10.0.0.0/24", "192.168.0.1", "Ethernet1", metric=20))
        # Same protocol replaces; check re-install with better metric.
        rib.install(isis("10.0.0.0/24", "192.168.0.2", "Ethernet2", metric=5))
        best = rib.best(Prefix.parse("10.0.0.0/24"))
        assert best.metric == 5

    def test_custom_distance_override(self):
        rib = Rib()
        rib.install(isis("10.0.0.0/24", "192.168.0.1", "Ethernet1"))
        rib.install(
            Route(
                prefix=Prefix.parse("10.0.0.0/24"),
                protocol=Protocol.STATIC,
                next_hops=(NextHop(ip=parse_ipv4("192.168.0.9"), interface="e2"),),
                distance=250,
            )
        )
        assert rib.best(Prefix.parse("10.0.0.0/24")).protocol is Protocol.ISIS

    def test_withdraw_falls_back(self):
        rib = Rib()
        rib.install(isis("10.0.0.0/24", "192.168.0.1", "Ethernet1"))
        rib.install(
            Route(
                prefix=Prefix.parse("10.0.0.0/24"),
                protocol=Protocol.STATIC,
                next_hops=(NextHop(ip=parse_ipv4("192.168.0.9"), interface="e2"),),
            )
        )
        rib.withdraw(Protocol.STATIC, Prefix.parse("10.0.0.0/24"))
        assert rib.best(Prefix.parse("10.0.0.0/24")).protocol is Protocol.ISIS

    def test_withdraw_last_removes_fib_entry(self):
        rib = Rib()
        rib.install(isis("10.0.0.0/24", "192.168.0.1", "Ethernet1"))
        rib.withdraw(Protocol.ISIS, Prefix.parse("10.0.0.0/24"))
        assert rib.fib.lookup(parse_ipv4("10.0.0.1")) is None
        assert rib.best(Prefix.parse("10.0.0.0/24")) is None

    def test_withdraw_all_protocol(self):
        rib = Rib()
        rib.install(isis("10.0.0.0/24", "192.168.0.1", "e1"))
        rib.install(isis("10.0.1.0/24", "192.168.0.1", "e1"))
        rib.install(connected("192.168.0.0/24", "e1"))
        rib.withdraw_all(Protocol.ISIS)
        assert len(list(rib.best_routes())) == 1


class TestResolution:
    def make_rib(self):
        rib = Rib()
        rib.install(connected("192.168.0.0/31", "Ethernet1"))
        rib.install(isis("2.2.2.3/32", "192.168.0.1", "Ethernet1", metric=20))
        return rib

    def test_direct_next_hop(self):
        rib = self.make_rib()
        entry = rib.fib.lookup(parse_ipv4("2.2.2.3"))
        assert entry.action is FibAction.FORWARD
        assert entry.next_hops[0].interface == "Ethernet1"

    def test_recursive_bgp_via_igp(self):
        rib = self.make_rib()
        rib.install(bgp("100.0.0.0/24", "2.2.2.3"))
        entry = rib.fib.lookup(parse_ipv4("100.0.0.1"))
        assert entry is not None
        assert entry.action is FibAction.FORWARD
        assert entry.next_hops[0].interface == "Ethernet1"
        assert entry.next_hops[0].ip == parse_ipv4("192.168.0.1")

    def test_unresolvable_bgp_stays_out_of_fib(self):
        rib = Rib()
        rib.install(bgp("100.0.0.0/24", "2.2.2.3"))
        assert rib.fib.lookup(parse_ipv4("100.0.0.1")) is None

    def test_late_igp_resolves_pending_bgp(self):
        rib = Rib()
        rib.install(bgp("100.0.0.0/24", "2.2.2.3"))
        rib.install(connected("192.168.0.0/31", "Ethernet1"))
        rib.install(isis("2.2.2.3/32", "192.168.0.1", "Ethernet1"))
        changed = rib.commit()
        assert changed
        entry = rib.fib.lookup(parse_ipv4("100.0.0.1"))
        assert entry is not None and entry.action is FibAction.FORWARD

    def test_igp_withdrawal_unresolves_bgp(self):
        rib = self.make_rib()
        rib.install(bgp("100.0.0.0/24", "2.2.2.3"))
        rib.withdraw(Protocol.ISIS, Prefix.parse("2.2.2.3/32"))
        rib.commit()
        assert rib.fib.lookup(parse_ipv4("100.0.0.1")) is None

    def test_connected_gateway_resolution(self):
        rib = Rib()
        rib.install(connected("192.168.0.0/24", "Ethernet1"))
        rib.install(bgp("100.0.0.0/24", "192.168.0.77", internal=False))
        entry = rib.fib.lookup(parse_ipv4("100.0.0.1"))
        assert entry.next_hops[0].ip == parse_ipv4("192.168.0.77")

    def test_resolution_loop_detected(self):
        rib = Rib()
        # Two BGP routes resolving through each other.
        rib.install(bgp("1.0.0.0/8", "2.0.0.1"))
        rib.install(bgp("2.0.0.0/8", "1.0.0.1"))
        assert rib.fib.lookup(parse_ipv4("1.2.3.4")) is None
        assert rib.fib.lookup(parse_ipv4("2.2.3.4")) is None

    def test_resolve_ip_helper(self):
        rib = self.make_rib()
        result = rib.resolve_ip(parse_ipv4("2.2.2.3"))
        assert result is not None
        route, gateway = result
        assert route.protocol is Protocol.ISIS
        assert gateway == parse_ipv4("2.2.2.3")

    def test_discard_route(self):
        rib = Rib()
        rib.install(
            Route(
                prefix=Prefix.parse("10.0.0.0/8"),
                protocol=Protocol.STATIC,
                next_hops=(),
            )
        )
        entry = rib.fib.lookup(parse_ipv4("10.1.1.1"))
        assert entry.action is FibAction.DISCARD


class TestEcmp:
    def test_multiple_next_hops_preserved(self):
        rib = Rib()
        rib.install(
            Route(
                prefix=Prefix.parse("10.0.0.0/24"),
                protocol=Protocol.ISIS,
                next_hops=(
                    NextHop(ip=parse_ipv4("192.168.0.1"), interface="e1"),
                    NextHop(ip=parse_ipv4("192.168.1.1"), interface="e2"),
                ),
                metric=10,
            )
        )
        entry = rib.fib.lookup(parse_ipv4("10.0.0.5"))
        assert len(entry.next_hops) == 2


class TestVersioning:
    def test_fib_version_increments_on_change(self):
        rib = Rib()
        v0 = rib.fib.version
        rib.install(connected("192.168.0.0/24", "e1"))
        assert rib.fib.version > v0

    def test_idempotent_install_no_version_bump(self):
        rib = Rib()
        rib.install(connected("192.168.0.0/24", "e1"))
        version = rib.fib.version
        rib.install(connected("192.168.0.0/24", "e1"))
        assert rib.fib.version == version

    def test_igp_version_tracks_igp_only(self):
        rib = Rib()
        rib.install(connected("192.168.0.0/24", "e1"))
        igp_version = rib.igp_version
        rib.install(bgp("100.0.0.0/24", "192.168.0.9"))
        assert rib.igp_version == igp_version
        rib.install(isis("10.0.0.0/24", "192.168.0.1", "e1"))
        assert rib.igp_version > igp_version
