"""Direct unit tests for the routed inter-pod fabric."""

import pytest

from repro.net.addr import parse_ipv4

from tests.helpers import isis_config, mini_net


@pytest.fixture()
def net():
    configs = {
        "r1": isis_config("r1", 1, "2.2.2.1", [("Ethernet1", "10.0.0.0/31")]),
        "r2": isis_config(
            "r2", 2, "2.2.2.2",
            [("Ethernet1", "10.0.0.1/31"), ("Ethernet2", "10.0.1.0/31")],
        ),
        "r3": isis_config("r3", 3, "2.2.2.3", [("Ethernet1", "10.0.1.1/31")]),
    }
    links = [
        ("r1", "Ethernet1", "r2", "Ethernet1"),
        ("r2", "Ethernet2", "r3", "Ethernet1"),
    ]
    net = mini_net(configs, links)
    net.converge()
    return net


class TestRoutedDelivery:
    def test_multihop_delivery_follows_fibs(self, net):
        received = []
        net.fabric.register(
            "r3", parse_ipv4("2.2.2.3"),
            lambda src, dst, payload: received.append((src, payload)),
        )
        ok = net.fabric.send(
            "r1", parse_ipv4("2.2.2.1"), parse_ipv4("2.2.2.3"), "ping"
        )
        assert ok
        net.kernel.run(until=net.kernel.now + 1.0)
        assert received == [(parse_ipv4("2.2.2.1"), "ping")]

    def test_no_listener_no_delivery(self, net):
        # Address owned but nothing bound to it.
        ok = net.fabric.send(
            "r1", parse_ipv4("2.2.2.1"), parse_ipv4("2.2.2.3"), "ping"
        )
        assert not ok

    def test_unroutable_destination_rejected(self, net):
        ok = net.fabric.send(
            "r1", parse_ipv4("2.2.2.1"), parse_ipv4("203.0.113.9"), "x"
        )
        assert not ok
        assert net.fabric.datagrams_dropped >= 1

    def test_unregister(self, net):
        net.fabric.register("r3", parse_ipv4("2.2.2.3"), lambda *_: None)
        net.fabric.unregister("r3", parse_ipv4("2.2.2.3"))
        assert not net.fabric.send(
            "r1", parse_ipv4("2.2.2.1"), parse_ipv4("2.2.2.3"), "x"
        )

    def test_delivery_fails_after_link_cut(self, net):
        net.fabric.register("r3", parse_ipv4("2.2.2.3"), lambda *_: None)
        net.link_down("r2", "Ethernet2", "r3", "Ethernet1")
        assert not net.fabric.send(
            "r1", parse_ipv4("2.2.2.1"), parse_ipv4("2.2.2.3"), "x"
        )

    def test_reachable_probe(self, net):
        assert net.fabric.reachable("r1", parse_ipv4("2.2.2.3"))
        assert not net.fabric.reachable("r1", parse_ipv4("203.0.113.9"))


class TestFlowSerialization:
    class _Heavy:
        wire_cost = 5.0

    def test_messages_on_one_flow_serialize(self, net):
        times = []
        net.fabric.register(
            "r2", parse_ipv4("2.2.2.2"),
            lambda *_args: times.append(net.kernel.now),
        )
        src = parse_ipv4("2.2.2.1")
        dst = parse_ipv4("2.2.2.2")
        start = net.kernel.now
        for _ in range(3):
            net.fabric.send("r1", src, dst, self._Heavy())
        net.kernel.run(until=net.kernel.now + 60.0)
        assert len(times) == 3
        # Arrivals roughly 5s apart: the pipe is occupied per message.
        assert times[0] - start == pytest.approx(5.0, abs=0.5)
        assert times[2] - start == pytest.approx(15.0, abs=1.0)

    def test_distinct_flows_do_not_serialize(self, net):
        times = []
        net.fabric.register(
            "r2", parse_ipv4("2.2.2.2"),
            lambda *_args: times.append(net.kernel.now),
        )
        start = net.kernel.now
        net.fabric.send(
            "r1", parse_ipv4("2.2.2.1"), parse_ipv4("2.2.2.2"), self._Heavy()
        )
        net.fabric.send(
            "r3", parse_ipv4("2.2.2.3"), parse_ipv4("2.2.2.2"), self._Heavy()
        )
        net.kernel.run(until=net.kernel.now + 60.0)
        assert len(times) == 2
        assert max(times) - start < 7.0  # both ~5s, in parallel

    def test_busy_reflects_backlog(self, net):
        net.fabric.register("r2", parse_ipv4("2.2.2.2"), lambda *_: None)
        assert not net.fabric.busy()
        net.fabric.send(
            "r1", parse_ipv4("2.2.2.1"), parse_ipv4("2.2.2.2"), self._Heavy()
        )
        assert net.fabric.busy()
        net.kernel.run(until=net.kernel.now + 10.0)
        assert not net.fabric.busy()


class TestExternals:
    def test_external_attach_and_roundtrip(self, net):
        inbound = []
        net.fabric.attach_external(
            "probe", "r3", "Ethernet2", parse_ipv4("10.0.9.1"),
            lambda src, dst, payload: inbound.append(payload),
        )
        # The gateway port comes up even without a modeled wire.
        assert net.router("r3").ports["Ethernet2"].is_up
        # Outbound from the external: enters at the gateway and follows
        # FIBs to a registered listener.
        delivered = []
        net.fabric.register(
            "r1", parse_ipv4("2.2.2.1"),
            lambda src, dst, payload: delivered.append(payload),
        )
        ok = net.fabric.send_external("probe", parse_ipv4("2.2.2.1"), "hello")
        assert ok
        net.kernel.run(until=net.kernel.now + 1.0)
        assert delivered == ["hello"]

    def test_unknown_external_raises(self, net):
        with pytest.raises(KeyError):
            net.fabric.send_external("ghost", parse_ipv4("2.2.2.1"), "x")

    def test_counters_track_traffic(self, net):
        net.fabric.register("r2", parse_ipv4("2.2.2.2"), lambda *_: None)
        before = net.fabric.datagrams_delivered
        net.fabric.send(
            "r1", parse_ipv4("2.2.2.1"), parse_ipv4("2.2.2.2"), "x"
        )
        assert net.fabric.datagrams_delivered == before + 1
