"""repro.chaos: fault plans, the injector, and graceful degradation.

The contract under test is the robustness story end to end: a seeded
:class:`FaultPlan` replays byte-identically, transient faults are
retried away, unrecoverable faults degrade to an explicit
``PartialSnapshot`` manifest, and degraded destinations answer
``UNKNOWN_DEGRADED`` consistently from both the scalar walker and the
atom-graph engine — never a fabricated ``NO_ROUTE``.
"""

import math
import pickle

import pytest

from repro.chaos import (
    ChaosInjector,
    ConvergenceStall,
    FaultPlan,
    GnmiFlake,
    PodCrash,
    SlowBoot,
    StaleAft,
    acceptance_plan,
    sampled_plan,
)
from repro.core.pipeline import ModelFreeBackend
from repro.core.snapshot import PartialSnapshot, Snapshot
from repro.corpus.fig2 import fig2_scenario
from repro.dataplane.forwarding import Disposition, ForwardingWalk
from repro.gnmi.server import ExtractionError, dump_afts, extract_afts
from repro.kube.kne import ConvergenceTimeout, KneDeployment
from repro.obs import ConvergenceTimeline, tracing
from repro.protocols.timers import FAST_TIMERS
from repro.verify.reachability import ReachabilityAnalysis, pairwise_matrix


def fig2_backend():
    return ModelFreeBackend(
        fig2_scenario().topology, timers=FAST_TIMERS, quiet_period=5.0
    )


class TestFaultPlan:
    def plan(self):
        return FaultPlan(
            name="mix",
            seed=11,
            faults=(
                PodCrash(node="r3", at=1000.0),
                GnmiFlake(node="r1", failures=2),
                SlowBoot(node="r2", factor=2.5),
                StaleAft(node="r4", serves=1),
            ),
        )

    def test_picklable_roundtrip(self):
        plan = self.plan()
        assert pickle.loads(pickle.dumps(plan)) == plan

    def test_scheduled_excludes_slow_boots(self):
        kinds = [f.kind for f in self.plan().scheduled()]
        assert "slow-boot" not in kinds
        assert len(kinds) == 3

    def test_scheduled_sorted_by_time(self):
        times = [f.at for f in self.plan().scheduled()]
        assert times == sorted(times)

    def test_len_and_empty(self):
        assert len(self.plan()) == 4
        assert not self.plan().is_empty
        assert FaultPlan().is_empty

    def test_describe_names_every_fault(self):
        described = self.plan().describe()
        targets = {f["target"] for f in described["faults"]}
        assert targets == {"r1", "r2", "r3", "r4"}

    def test_sampled_plan_deterministic(self):
        nodes = [f"r{i}" for i in range(1, 7)]
        assert sampled_plan(nodes, seed=3) == sampled_plan(nodes, seed=3)
        assert sampled_plan(nodes, seed=3) != sampled_plan(nodes, seed=4)

    def test_acceptance_plan_shape(self):
        plan = acceptance_plan(["r1", "r2", "r3"], crash_at=500.0)
        kinds = sorted(f.kind for f in plan.faults)
        assert kinds.count("pod-crash") == 1
        assert "gnmi-flake" in kinds


class TestGnmiFaultInjection:
    """Injector faults on the extraction path of one warm deployment."""

    @pytest.fixture(scope="class")
    def deployment(self):
        dep = KneDeployment(
            fig2_scenario().topology, timers=FAST_TIMERS, seed=3
        )
        dep.deploy()
        dep.wait_converged(quiet_period=5.0)
        return dep

    def arm(self, deployment, plan):
        injector = ChaosInjector(deployment, plan).arm()
        # Fire the activations scheduled at (or before) the current
        # simulated time; future protocol events stay queued.
        deployment.kernel.run(until=deployment.kernel.now)
        return injector

    def test_flake_retries_and_recovers(self, deployment):
        plan = FaultPlan(faults=(GnmiFlake(node="r1", failures=2),))
        injector = self.arm(deployment, plan)
        with tracing() as tracer:
            report = extract_afts(deployment)
        assert report.degraded == {}
        assert report.retries["r1"] == 2
        assert injector.fired("gnmi-flake") == 2
        assert tracer.counters["gnmi.retry"] == 2
        assert set(report.afts) == set(deployment.routers)

    def test_flake_exhaustion_degrades(self, deployment):
        plan = FaultPlan(faults=(GnmiFlake(node="r1", failures=99),))
        self.arm(deployment, plan)
        report = extract_afts(deployment, max_attempts=3)
        assert "r1" in report.degraded
        assert "flake" in report.degraded["r1"]
        assert report.degraded_addresses["r1"]
        assert report.is_partial
        assert "r1" not in report.afts
        # The strict wrapper refuses a partial result.
        self.arm(deployment, FaultPlan(faults=(
            GnmiFlake(node="r1", failures=99),
        )))
        with pytest.raises(ExtractionError):
            dump_afts(deployment)
        # Clear the leftover flakes so later tests see a healthy node.
        ChaosInjector(deployment, FaultPlan()).arm()

    def test_stale_aft_detected_and_retried(self, deployment):
        plan = FaultPlan(faults=(StaleAft(node="r2", serves=1),))
        injector = self.arm(deployment, plan)
        report = extract_afts(deployment)
        assert report.degraded == {}
        assert report.retries.get("r2", 0) >= 1
        assert injector.fired("stale-aft") == 1

    def test_truncated_aft_detected_and_retried(self, deployment):
        plan = FaultPlan(
            faults=(StaleAft(node="r2", serves=1, truncate=True),)
        )
        injector = self.arm(deployment, plan)
        report = extract_afts(deployment)
        assert report.degraded == {}
        assert injector.fired("truncated-aft") == 1

    def test_empty_armed_plan_changes_nothing(self, deployment):
        injector = self.arm(deployment, FaultPlan())
        report = extract_afts(deployment)
        assert report.degraded == {}
        assert report.retries == {}
        assert injector.log == []


class TestPodCrashDegradation:
    """A crash past the retry budget degrades gracefully end to end."""

    @pytest.fixture(scope="class")
    def snapshot(self):
        plan = FaultPlan(
            name="crash-r3", faults=(PodCrash(node="r3", at=1000.0),)
        )
        return fig2_backend().run(
            seed=0, snapshot_name="chaos-crash", chaos=plan
        )

    def test_partial_snapshot_with_manifest(self, snapshot):
        assert isinstance(snapshot, PartialSnapshot)
        assert snapshot.is_partial
        assert set(snapshot.degraded_nodes) == {"r3"}
        assert snapshot.metadata["degraded_addresses"]["r3"]
        assert snapshot.metadata["chaos"]["faults"] == 1

    def test_degraded_destination_answers_unknown(self, snapshot):
        dataplane = snapshot.dataplane
        assert dataplane.degraded_nodes == frozenset({"r3"})
        assert dataplane.degraded_owned
        address = next(iter(dataplane.degraded_owned))
        result = ForwardingWalk(dataplane).walk("r1", address)
        assert [t.disposition for t in result.traces] == [
            Disposition.UNKNOWN_DEGRADED
        ]

    def test_never_misreported_as_no_route(self, snapshot):
        rows = ReachabilityAnalysis(snapshot.dataplane).analyze()
        degraded_rows = [
            row
            for row in rows
            if Disposition.UNKNOWN_DEGRADED in row.dispositions
        ]
        assert degraded_rows
        for row in degraded_rows:
            assert Disposition.NO_ROUTE not in row.dispositions

    def test_engine_agrees_with_walker(self, snapshot):
        dataplane = snapshot.dataplane
        assert pairwise_matrix(dataplane, use_engine=True) == pairwise_matrix(
            dataplane, use_engine=False
        )

    def test_blackhole_detector_excludes_degraded(self, snapshot):
        from repro.verify.invariants import detect_blackholes

        degraded = set(snapshot.dataplane.degraded_owned)
        for row in detect_blackholes(snapshot.dataplane):
            assert row.sample_destination not in degraded

    def test_json_roundtrip_preserves_degradation(self, snapshot):
        restored = Snapshot.from_dict(snapshot.to_dict())
        assert isinstance(restored, PartialSnapshot)
        assert restored.degraded_nodes == snapshot.degraded_nodes
        assert (
            restored.dataplane.fib_fingerprint()
            == snapshot.dataplane.fib_fingerprint()
        )

    def test_degraded_nodes_question(self, snapshot):
        from repro.pybf.session import Session

        session = Session()
        session.init_snapshot(snapshot, name="crash")
        answer = session.q.degradedNodes().answer(snapshot="crash")
        rows = list(answer.frame())
        assert [row["Node"] for row in rows] == ["r3"]
        assert rows[0]["Reason"]

    def test_service_counts_degraded_answers(self, snapshot):
        from repro.service.service import VerificationService

        with VerificationService(workers=1) as svc:
            svc.register_snapshot(snapshot, name="partial")
            job = svc.submit("degradedNodes", snapshot="partial")
            answer = job.result(timeout=10).value
            assert [row["Node"] for row in answer.frame()] == ["r3"]
            job = svc.submit("reachability", snapshot="partial")
            assert job.result(timeout=10).value is not None
            assert svc.counters["degraded_answers"] == 2


class TestDeterminism:
    """Same (plan, topology, seed) -> byte-identical replay."""

    def _run(self, chaos, name):
        return fig2_backend().run(seed=7, snapshot_name=name, chaos=chaos)

    def test_same_seed_same_plan_identical(self):
        plan = FaultPlan(
            name="replay",
            seed=5,
            faults=(
                GnmiFlake(node="r1", failures=2),
                PodCrash(node="r4", at=1000.0),
                SlowBoot(node="r2", factor=2.0),
            ),
        )
        first = self._run(plan, "replay-a")
        second = self._run(plan, "replay-b")
        assert first.metadata["chaos"]["log"] == second.metadata["chaos"]["log"]
        assert first.degraded_nodes == second.degraded_nodes
        assert (
            first.dataplane.fib_fingerprint()
            == second.dataplane.fib_fingerprint()
        )
        assert first.metadata.get("extraction_retries") == second.metadata.get(
            "extraction_retries"
        )

    def test_empty_plan_identical_to_no_chaos(self):
        baseline = self._run(None, "plain")
        empty = self._run(FaultPlan(), "empty-plan")
        assert "chaos" not in baseline.metadata
        assert "chaos" not in empty.metadata
        assert not isinstance(empty, PartialSnapshot)
        assert (
            baseline.dataplane.fib_fingerprint()
            == empty.dataplane.fib_fingerprint()
        )
        assert pairwise_matrix(baseline.dataplane) == pairwise_matrix(
            empty.dataplane
        )


class TestConvergenceStall:
    def test_stall_raises_structured_timeout_then_heals(self):
        dep = KneDeployment(
            fig2_scenario().topology, timers=FAST_TIMERS, seed=2
        )
        plan = FaultPlan(
            faults=(ConvergenceStall(at=0.0, duration=1e9, period=1.0),)
        )
        ChaosInjector(dep, plan).arm()
        dep.deploy()
        deadline = dep.kernel.now + 120.0
        with pytest.raises(ConvergenceTimeout) as excinfo:
            dep.wait_converged(quiet_period=5.0, max_time=deadline)
        assert excinfo.value.elapsed > 0
        assert not dep.report.converged
        assert math.isnan(dep.report.convergence_seconds)


class TestChannelLoss:
    def test_lossy_channel_drops_deterministically(self):
        from repro.sim.channel import Channel
        from repro.sim.kernel import SimKernel

        def pattern(seed):
            kernel = SimKernel(seed=seed)
            channel = Channel(kernel, lambda payload: None)
            channel.drop_rate = 0.5
            outcomes = []
            for i in range(64):
                outcomes.append(channel.send(i) is None)
            return outcomes, channel.messages_dropped

        first, dropped = pattern(seed=9)
        second, _ = pattern(seed=9)
        assert first == second
        assert 0 < dropped < 64

    def test_zero_drop_rate_consumes_no_rng(self):
        from repro.sim.channel import Channel
        from repro.sim.kernel import SimKernel

        plain = SimKernel(seed=4)
        lossless = SimKernel(seed=4)
        channel = Channel(lossless, lambda payload: None)
        for i in range(16):
            channel.send(i)
        # The wire consumed exactly the jitter draws a chaos-free build
        # would have: the next value of both rng streams must agree.
        for _ in range(16):
            plain.rng.random()
        assert plain.rng.random() == lossless.rng.random()


class TestTimelineChaosSection:
    def test_chaos_events_render(self):
        from repro.obs import bus

        with tracing() as tracer:
            collector = bus.ACTIVE
            collector.emit(
                "chaos.fault", 12.0,
                action="activate", kind="pod-crash", target="r3",
            )
            collector.emit(
                "pipeline.degraded", 900.0, node="r3", reason="pod-failed"
            )
        timeline = ConvergenceTimeline.from_tracer(tracer)
        assert len(timeline.chaos_faults) == 1
        assert len(timeline.degraded) == 1
        text = timeline.render()
        assert "Chaos faults" in text
        assert "pod-crash" in text
        assert "Degraded nodes" in text
        assert "pod-failed" in text
