"""Core pipeline tests: backends, snapshots, contexts, multirun."""

import pytest

from repro.core.context import (
    ScenarioContext,
    k_link_cut_count,
    single_link_cut_contexts,
)
from repro.core.differential import compare_snapshots
from repro.core.multirun import explore_nondeterminism
from repro.core.pipeline import ModelFreeBackend, NativeBatfishBackend
from repro.core.snapshot import Snapshot
from repro.corpus.fig3 import fig3_scenario
from repro.net.addr import parse_ipv4
from repro.protocols.timers import FAST_TIMERS
from repro.topo.builder import TopologyBuilder
from repro.verify.reachability import pairwise_matrix


class TestSnapshot:
    def test_save_load_roundtrip(self, fig3_emulated, tmp_path):
        _backend, snapshot = fig3_emulated
        path = tmp_path / "snap.json"
        snapshot.save(path)
        restored = Snapshot.load(path)
        assert restored.name == snapshot.name
        assert restored.backend == "emulation"
        assert set(restored.afts) == set(snapshot.afts)
        # Restored snapshots answer queries identically.
        assert pairwise_matrix(restored.dataplane) == pairwise_matrix(
            snapshot.dataplane
        )

    def test_dataplane_cached(self, fig3_emulated):
        _backend, snapshot = fig3_emulated
        assert snapshot.dataplane is snapshot.dataplane

    def test_metadata_populated(self, fig3_emulated):
        _backend, snapshot = fig3_emulated
        assert snapshot.startup_seconds > 0
        assert snapshot.metadata["devices"] == 3


class TestModelFreeBackend:
    def test_emulation_full_mesh(self, fig3_emulated):
        _backend, snapshot = fig3_emulated
        assert all(pairwise_matrix(snapshot.dataplane).values())

    def test_operator_access_preserved(self, fig3_emulated):
        backend, _snapshot = fig3_emulated
        ssh = backend.last_run.deployment.ssh("r1")
        assert "2.2.2.3/32" in ssh.execute("show ip route")

    def test_link_cut_context(self, fig3):
        backend = ModelFreeBackend(
            fig3.topology, timers=FAST_TIMERS, quiet_period=5.0
        )
        context = ScenarioContext().with_link_down("r2", "r3")
        snapshot = backend.run(context)
        matrix = pairwise_matrix(snapshot.dataplane)
        assert matrix[("r1", "r3")] is False
        assert matrix[("r1", "r2")] is True


class TestNativeBatfishBackend:
    def test_model_backend_diverges_on_fig3(self, fig3_model):
        _backend, snapshot = fig3_model
        assert snapshot.backend == "model"
        matrix = pairwise_matrix(snapshot.dataplane)
        assert matrix[("r2", "r1")] is False

    def test_unrecognized_lines_in_metadata(self, fig3_model):
        _backend, snapshot = fig3_model
        assert snapshot.metadata["unrecognized_lines"]["r1"] >= 1

    def test_rejects_injectors(self, fig3):
        backend = NativeBatfishBackend(fig3.topology)
        from repro.corpus.routes import InjectorSpec

        context = ScenarioContext(
            injectors=(
                InjectorSpec(
                    name="p", asn=1, ip="10.9.0.1",
                    gateway_node="r1", gateway_port="Ethernet1",
                    gateway_ip="10.9.0.0",
                ),
            )
        )
        with pytest.raises(NotImplementedError):
            backend.run(context)

    def test_rejects_non_arista(self):
        builder = TopologyBuilder("mixed")
        builder.node("x", vendor="nokia", config="set / system name host-name x")
        with pytest.raises(NotImplementedError):
            NativeBatfishBackend(builder.build()).run()


class TestCrossBackendDifferential:
    def test_fig3_divergence_surfaces(self, fig3_emulated, fig3_model):
        _mf, emulated = fig3_emulated
        _nb, model = fig3_model
        rows = compare_snapshots(emulated, model)
        regressions = [row for row in rows if row.regressed]
        # The paper's headline: model drops traffic the real router
        # forwards, including r2 -> r1's loopback.
        assert any(
            row.ingress == "r2"
            and row.sample_destination == parse_ipv4("2.2.2.1")
            for row in regressions
        )

    def test_fixed_model_agrees_with_emulation(self, fig3, fig3_emulated):
        from repro.batfish_model.issues import FIXED_ASSUMPTIONS

        _mf, emulated = fig3_emulated
        fixed = NativeBatfishBackend(
            fig3.topology, assumptions=FIXED_ASSUMPTIONS
        ).run()
        rows = compare_snapshots(emulated, fixed)
        assert [row for row in rows if row.regressed] == []


class TestContexts:
    def test_with_link_down_names_context(self):
        context = ScenarioContext().with_link_down("a", "b")
        assert context.down_links == (("a", "b"),)
        assert "cut:a-b" in context.name

    def test_single_link_cut_enumeration(self, fig3):
        contexts = list(single_link_cut_contexts(fig3.topology))
        assert len(contexts) == len(fig3.topology.links)

    def test_k_cut_growth(self):
        assert k_link_cut_count(20, 1) == 20
        assert k_link_cut_count(20, 2) == 190
        assert k_link_cut_count(20, 3) == 1140


class TestMultirun:
    def test_seeds_converge_to_equivalent_dataplanes(self, fig3):
        backend = ModelFreeBackend(
            fig3.topology, timers=FAST_TIMERS, quiet_period=5.0
        )
        result = explore_nondeterminism(backend, seeds=(0, 1))
        assert len(result.snapshots) == 2
        # Fig. 3 has no ordering-dependent tiebreaks: all seeds agree.
        assert result.deterministic
        assert "equivalent" in result.summary()

    def test_divergence_reported_per_pair(self, fig3):
        backend = ModelFreeBackend(
            fig3.topology, timers=FAST_TIMERS, quiet_period=5.0
        )
        result = explore_nondeterminism(backend, seeds=(2, 3))
        assert (2, 3) in result.divergences
