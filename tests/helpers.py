"""Test harness utilities: a minimal emulated network without KNE.

``mini_net`` wires routers directly (no pod scheduling, no boot-time
model) so protocol unit tests converge in milliseconds of simulated
time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.kube.fabric import Fabric
from repro.kube.kne import ConvergenceDetector
from repro.protocols.timers import FAST_TIMERS, TimerProfile
from repro.sim.channel import Channel
from repro.sim.kernel import SimKernel
from repro.vendors.base import RouterOS
from repro.vendors.registry import create_router


@dataclass
class MiniNet:
    kernel: SimKernel
    fabric: Fabric
    routers: dict[str, RouterOS]
    channels: dict[tuple[str, str], Channel]

    def converge(self, quiet: float = 2.0, max_time: float = 3600.0) -> float:
        detector = ConvergenceDetector(
            list(self.routers.values()), fabric=self.fabric
        )
        return self.kernel.run_until_quiet(
            quiet, poll=detector.poll, max_time=max_time
        )

    def link_down(self, a: str, a_port: str, z: str, z_port: str) -> None:
        for node, port in ((a, a_port), (z, z_port)):
            channel = self.channels.get((node, port))
            if channel is not None:
                channel.set_down()
            self.routers[node].ports[port].set_link_state(False)

    def router(self, name: str) -> RouterOS:
        return self.routers[name]


def mini_net(
    configs: dict[str, str],
    links: list[tuple[str, str, str, str]],
    *,
    vendors: dict[str, str] | None = None,
    os_versions: dict[str, str] | None = None,
    timers: TimerProfile = FAST_TIMERS,
    seed: int = 0,
) -> MiniNet:
    """Build a running network: configs keyed by router name, links as
    (a, a_port, z, z_port) tuples. Routers boot instantly."""
    kernel = SimKernel(seed=seed)
    fabric = Fabric(kernel)
    vendors = vendors or {}
    os_versions = os_versions or {}
    routers: dict[str, RouterOS] = {}
    for name in configs:
        router = create_router(
            vendors.get(name, "arista"),
            name,
            kernel,
            fabric,
            os_version=os_versions.get(name, ""),
            timers=timers,
        )
        routers[name] = router
        fabric.add_router(router)
    channels: dict[tuple[str, str], Channel] = {}
    for a, a_port, z, z_port in links:
        pa = routers[a].port(a_port)
        pz = routers[z].port(z_port)
        to_z = Channel(kernel, pz.receive, name=f"{a}:{a_port}->{z}:{z_port}")
        to_a = Channel(kernel, pa.receive, name=f"{z}:{z_port}->{a}:{a_port}")
        pa.attach(to_z)
        pz.attach(to_a)
        channels[(a, a_port)] = to_z
        channels[(z, z_port)] = to_a
        fabric.add_wire(a, a_port, z, z_port)
    for name, router in routers.items():
        router.power_on(0.01)
        router.on_boot(lambda r=router, c=configs[name]: r.apply_config(c))
    return MiniNet(kernel=kernel, fabric=fabric, routers=routers,
                   channels=channels)


def isis_config(
    name: str,
    index: int,
    loopback: str,
    interfaces: list[tuple[str, str]],
) -> str:
    """A minimal EOS IS-IS config: interfaces as (name, addr/len)."""
    lines = [
        f"hostname {name}",
        "ip routing",
        "router isis default",
        f"   net 49.0001.0000.0000.{index:04d}.00",
        "   address-family ipv4 unicast",
        "interface Loopback0",
        f"   ip address {loopback}/32",
        "   isis enable default",
        "   isis passive",
    ]
    for iface, address in interfaces:
        lines += [
            f"interface {iface}",
            "   no switchport",
            f"   ip address {address}",
            "   isis enable default",
        ]
    return "\n".join(lines) + "\n"
