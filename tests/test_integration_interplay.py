"""A1: the §2 vendor-interplay anecdotes, observable only in emulation.

Two experiments a single reference model cannot express:

* RSVP-TE timer interplay — a transit vendor build that never emits
  PathErr turns a sub-second LSP repair into a soft-state-timeout wait
  ("very slow reconvergence after a major link-cut");
* the iBGP IGP-metric regression — a buggy build prefers the farther
  exit.
"""

import pytest

from repro.net.addr import Prefix, parse_ipv4
from repro.rib.route import Protocol

from tests.helpers import mini_net
from tests.test_protocols_rsvp import te_config


def diamond(quiet_transit: bool, seed=0):
    """r1 -> {r2, r3} -> r4 with a TE tunnel r1 -> r4.

    IGP metrics prefer the r2 branch, so the LSP rides r1-r2-r4; the
    r2-r4 link is then cut and repair must move to the r3 branch.
    """
    configs = {
        "r1": te_config("r1", 1, "2.2.2.1",
                        [("Ethernet1", "10.0.0.0/31"),
                         ("Ethernet2", "10.0.1.0/31")],
                        tunnel_to="2.2.2.4"),
        "r2": te_config("r2", 2, "2.2.2.2",
                        [("Ethernet1", "10.0.0.1/31"),
                         ("Ethernet2", "10.0.2.0/31")]),
        "r3": te_config("r3", 3, "2.2.2.3",
                        [("Ethernet1", "10.0.1.1/31"),
                         ("Ethernet2", "10.0.3.0/31")]),
        "r4": te_config("r4", 4, "2.2.2.4",
                        [("Ethernet1", "10.0.2.1/31"),
                         ("Ethernet2", "10.0.3.1/31")]),
    }
    # Bias IGP onto the r2 branch.
    configs["r1"] += "interface Ethernet2\n   isis metric 50\n"
    configs["r3"] += "interface Ethernet2\n   isis metric 50\n"
    os_versions = {"r2": "22.6-rsvp-quiet"} if quiet_transit else {}
    vendors = {"r2": "nokia"} if quiet_transit else {}
    if quiet_transit:
        # SR Linux speaks its own config language.
        configs["r2"] = "\n".join(
            [
                "set / system name host-name r2",
                "set / interface ethernet-1/1 subinterface 0 ipv4 address 10.0.0.1/31",
                "set / interface ethernet-1/2 subinterface 0 ipv4 address 10.0.2.0/31",
                "set / interface lo0 subinterface 0 ipv4 address 2.2.2.2/32",
                "set / network-instance default protocols isis instance default net 49.0001.0000.0000.0002.00",
                "set / network-instance default protocols isis instance default interface lo0.0 passive true",
                "set / network-instance default protocols isis instance default interface ethernet-1/1.0 metric 10",
                "set / network-instance default protocols isis instance default interface ethernet-1/2.0 metric 10",
                "set / network-instance default protocols mpls admin-state enable",
                "set / network-instance default protocols rsvp admin-state enable",
            ]
        )
    links = [
        ("r1", "Ethernet1", "r2",
         "ethernet-1/1" if quiet_transit else "Ethernet1"),
        ("r1", "Ethernet2", "r3", "Ethernet1"),
        ("r2", "ethernet-1/2" if quiet_transit else "Ethernet2",
         "r4", "Ethernet1"),
        ("r3", "Ethernet2", "r4", "Ethernet2"),
    ]
    net = mini_net(configs, links, vendors=vendors,
                   os_versions=os_versions, seed=seed)
    net.converge(quiet=5.0)
    return net


def run_cut_and_measure(quiet_transit: bool) -> float:
    net = diamond(quiet_transit)
    tunnel = next(iter(net.router("r1").rsvp.tunnels.values()))
    assert tunnel.up
    assert tunnel.current_route[1] == "r2", tunnel.current_route
    t_cut = net.kernel.now
    r2_port = "ethernet-1/2" if quiet_transit else "Ethernet2"
    net.link_down("r2", r2_port, "r4", "Ethernet1")
    net.converge(quiet=40.0, max_time=t_cut + 3600.0)
    assert tunnel.up
    assert tunnel.current_route == ("r1", "r3", "r4")
    return tunnel.last_repair_time - t_cut


class TestRsvpTimerInterplay:
    def test_healthy_pair_repairs_fast(self):
        repair = run_cut_and_measure(quiet_transit=False)
        assert repair < 10.0

    def test_quiet_vendor_slows_reconvergence(self):
        healthy = run_cut_and_measure(quiet_transit=False)
        quiet = run_cut_and_measure(quiet_transit=True)
        # The interplay costs at least an order of magnitude.
        assert quiet > 10 * healthy
        assert quiet > 20.0  # bounded below by the refresh interval


class TestIbgpMetricRegression:
    def build(self, buggy: bool):
        """r1 has two iBGP exits (r2 near, r3 far) for the same prefix."""
        def core(name, index, loopback, interfaces, extra=""):
            base = te_config(name, index, loopback, interfaces)
            return base.replace("mpls ip\nrouter traffic-engineering\n   rsvp\n", "") + extra

        r1 = core("r1", 1, "2.2.2.1",
                  [("Ethernet1", "10.0.0.0/31"), ("Ethernet2", "10.0.1.0/31")],
                  extra=(
                      "interface Ethernet2\n   isis metric 100\n"
                      "router bgp 65000\n"
                      "   router-id 2.2.2.1\n"
                      "   neighbor 2.2.2.2 remote-as 65000\n"
                      "   neighbor 2.2.2.2 update-source Loopback0\n"
                      "   neighbor 2.2.2.3 remote-as 65000\n"
                      "   neighbor 2.2.2.3 update-source Loopback0\n"
                  ))
        def exit_router(name, index, loopback, address, iface="Ethernet1"):
            return core(name, index, loopback, [(iface, address)], extra=(
                f"router bgp 65000\n"
                f"   router-id {loopback}\n"
                "   neighbor 2.2.2.1 remote-as 65000\n"
                "   neighbor 2.2.2.1 update-source Loopback0\n"
                "   network 99.99.99.0/24\n"
                "ip route 99.99.99.0/24 Null0\n"
            ))
        configs = {
            "r1": r1,
            "r2": exit_router("r2", 2, "2.2.2.2", "10.0.0.1/31"),
            "r3": exit_router("r3", 3, "2.2.2.3", "10.0.1.1/31"),
        }
        links = [
            ("r1", "Ethernet1", "r2", "Ethernet1"),
            ("r1", "Ethernet2", "r3", "Ethernet1"),
        ]
        os_versions = {"r1": "4.29.1F-metric-bug"} if buggy else {}
        net = mini_net(configs, links, os_versions=os_versions)
        net.converge(quiet=5.0)
        return net

    def test_healthy_build_prefers_near_exit(self):
        net = self.build(buggy=False)
        path = net.router("r1").bgp.local_rib[Prefix.parse("99.99.99.0/24")]
        assert path.attrs.next_hop == parse_ipv4("2.2.2.2")

    def test_buggy_build_prefers_far_exit(self):
        net = self.build(buggy=True)
        path = net.router("r1").bgp.local_rib[Prefix.parse("99.99.99.0/24")]
        assert path.attrs.next_hop == parse_ipv4("2.2.2.3")

    def test_regression_changes_forwarding(self):
        healthy = self.build(buggy=False)
        buggy = self.build(buggy=True)
        healthy_entry = healthy.router("r1").rib.fib.lookup(
            parse_ipv4("99.99.99.1")
        )
        buggy_entry = buggy.router("r1").rib.fib.lookup(
            parse_ipv4("99.99.99.1")
        )
        assert healthy_entry.next_hops[0].interface == "Ethernet1"
        assert buggy_entry.next_hops[0].interface == "Ethernet2"
