"""E5: emulation-as-a-model fits the operator tooling flow.

Reproduces the paper's anecdote: an operator uses wrong (IOS-style)
IS-IS syntax on an Arista router; verification reports missing
reachability; the operator SSHes into the emulated router, inspects the
IS-IS database and routes with standard CLI commands, finds the problem,
fixes the config, and re-verifies.
"""

import pytest

from repro.core.pipeline import ModelFreeBackend
from repro.protocols.timers import FAST_TIMERS
from repro.topo.builder import TopologyBuilder
from repro.verify.reachability import pairwise_matrix

GOOD_R2 = """\
hostname r2
ip routing
router isis default
   net 49.0001.0000.0000.0002.00
   address-family ipv4 unicast
interface Loopback0
   ip address 2.2.2.2/32
   isis enable default
   isis passive
interface Ethernet1
   no switchport
   ip address 10.0.0.1/31
   isis enable default
"""

# The operator's broken config: IOS syntax `ip router isis` instead of
# the EOS `isis enable default`.
BROKEN_R1 = """\
hostname r1
ip routing
router isis default
   net 49.0001.0000.0000.0001.00
   address-family ipv4 unicast
interface Loopback0
   ip address 2.2.2.1/32
   isis enable default
   isis passive
interface Ethernet1
   no switchport
   ip address 10.0.0.0/31
   ip router isis
"""

FIXED_R1 = BROKEN_R1.replace("ip router isis", "isis enable default")


def build(r1_config):
    builder = TopologyBuilder("operator-debug")
    builder.node("r1", config=r1_config)
    builder.node("r2", config=GOOD_R2)
    builder.link("r1", "r2", a_int="Ethernet1", z_int="Ethernet1")
    return builder.build()


@pytest.fixture(scope="module")
def broken_run():
    backend = ModelFreeBackend(
        build(BROKEN_R1), timers=FAST_TIMERS, quiet_period=5.0
    )
    snapshot = backend.run()
    return backend, snapshot


class TestVerificationFlagsTheProblem:
    def test_reachability_missing(self, broken_run):
        _backend, snapshot = broken_run
        matrix = pairwise_matrix(snapshot.dataplane)
        assert matrix[("r2", "r1")] is False


class TestOperatorDebugSession:
    def test_router_reported_the_rejected_line(self, broken_run):
        backend, _ = broken_run
        ssh = backend.last_run.deployment.ssh("r1")
        diagnostics = ssh.execute("show running-config diagnostics")
        assert "ip router isis" in diagnostics

    def test_isis_database_shows_missing_neighbor_prefix(self, broken_run):
        backend, _ = broken_run
        ssh = backend.last_run.deployment.ssh("r1")
        database = ssh.execute("show isis database")
        # r1's own LSP advertises only the loopback: the link prefix is
        # missing because IS-IS never came up on Ethernet1.
        own_line = next(
            line for line in database.splitlines() if "0000.0000.0001" in line
        )
        assert "2.2.2.1/32" in own_line
        assert "10.0.0.0/31" not in own_line

    def test_no_isis_neighbors(self, broken_run):
        backend, _ = broken_run
        ssh = backend.last_run.deployment.ssh("r1")
        neighbors = ssh.execute("show isis neighbors")
        assert "0000.0000.0002" not in neighbors

    def test_ip_route_missing_remote_loopback(self, broken_run):
        backend, _ = broken_run
        ssh = backend.last_run.deployment.ssh("r1")
        routes = ssh.execute("show ip route")
        assert "2.2.2.2/32" not in routes


class TestFixAndReverify:
    def test_corrected_config_restores_reachability(self):
        backend = ModelFreeBackend(
            build(FIXED_R1), timers=FAST_TIMERS, quiet_period=5.0
        )
        snapshot = backend.run()
        assert all(pairwise_matrix(snapshot.dataplane).values())
