"""Tests for repro.net.trie."""

import pytest

from repro.net.addr import Prefix, parse_ipv4
from repro.net.trie import PrefixTrie


@pytest.fixture
def trie():
    t = PrefixTrie()
    t.insert(Prefix.parse("0.0.0.0/0"), "default")
    t.insert(Prefix.parse("10.0.0.0/8"), "ten")
    t.insert(Prefix.parse("10.1.0.0/16"), "ten-one")
    t.insert(Prefix.parse("10.1.2.0/24"), "ten-one-two")
    t.insert(Prefix.parse("192.168.0.0/16"), "rfc1918")
    return t


class TestInsertGet:
    def test_exact_get(self, trie):
        assert trie.get(Prefix.parse("10.1.0.0/16")) == "ten-one"

    def test_get_missing(self, trie):
        assert trie.get(Prefix.parse("10.2.0.0/16")) is None

    def test_replace_value(self, trie):
        trie.insert(Prefix.parse("10.0.0.0/8"), "replaced")
        assert trie.get(Prefix.parse("10.0.0.0/8")) == "replaced"
        assert len(trie) == 5

    def test_len(self, trie):
        assert len(trie) == 5

    def test_empty_trie(self):
        t = PrefixTrie()
        assert len(t) == 0
        assert not t
        assert t.longest_match(0) is None


class TestLongestMatch:
    def test_most_specific_wins(self, trie):
        prefix, value = trie.longest_match(parse_ipv4("10.1.2.3"))
        assert value == "ten-one-two"
        assert prefix == Prefix.parse("10.1.2.0/24")

    def test_intermediate(self, trie):
        _, value = trie.longest_match(parse_ipv4("10.1.9.9"))
        assert value == "ten-one"

    def test_falls_back_to_default(self, trie):
        prefix, value = trie.longest_match(parse_ipv4("8.8.8.8"))
        assert value == "default"
        assert prefix.length == 0

    def test_no_default_no_match(self):
        t = PrefixTrie()
        t.insert(Prefix.parse("10.0.0.0/8"), "x")
        assert t.longest_match(parse_ipv4("11.0.0.0")) is None

    def test_host_route(self):
        t = PrefixTrie()
        t.insert(Prefix.parse("1.1.1.1/32"), "host")
        t.insert(Prefix.parse("1.1.1.0/24"), "subnet")
        assert t.longest_match(parse_ipv4("1.1.1.1"))[1] == "host"
        assert t.longest_match(parse_ipv4("1.1.1.2"))[1] == "subnet"


class TestRemove:
    def test_remove_returns_value(self, trie):
        assert trie.remove(Prefix.parse("10.1.0.0/16")) == "ten-one"
        assert len(trie) == 4

    def test_remove_missing_returns_none(self, trie):
        assert trie.remove(Prefix.parse("172.16.0.0/12")) is None
        assert len(trie) == 5

    def test_lpm_after_remove(self, trie):
        trie.remove(Prefix.parse("10.1.2.0/24"))
        assert trie.longest_match(parse_ipv4("10.1.2.3"))[1] == "ten-one"

    def test_remove_keeps_descendants(self, trie):
        trie.remove(Prefix.parse("10.0.0.0/8"))
        assert trie.get(Prefix.parse("10.1.2.0/24")) == "ten-one-two"

    def test_clear(self, trie):
        trie.clear()
        assert len(trie) == 0
        assert trie.longest_match(parse_ipv4("10.1.2.3")) is None

    def test_remove_all_then_reinsert(self, trie):
        for prefix in list(trie.keys()):
            trie.remove(prefix)
        assert len(trie) == 0
        trie.insert(Prefix.parse("1.0.0.0/8"), "fresh")
        assert trie.longest_match(parse_ipv4("1.2.3.4"))[1] == "fresh"


class TestIteration:
    def test_items_complete(self, trie):
        assert len(list(trie.items())) == 5

    def test_keys_values_consistent(self, trie):
        keys = list(trie.keys())
        values = list(trie.values())
        for key, value in zip(keys, values):
            assert trie.get(key) == value

    def test_covering(self, trie):
        covering = list(trie.covering(Prefix.parse("10.1.2.0/24")))
        names = [value for _, value in covering]
        assert names == ["default", "ten", "ten-one", "ten-one-two"]

    def test_covering_partial(self, trie):
        covering = list(trie.covering(Prefix.parse("192.168.5.0/24")))
        assert [v for _, v in covering] == ["default", "rfc1918"]

    def test_contains(self, trie):
        assert Prefix.parse("10.0.0.0/8") in trie
