"""Tests for repro.net.intervals."""

import pytest

from repro.net.addr import Prefix
from repro.net.intervals import Interval, IntervalSet, atoms


class TestInterval:
    def test_length(self):
        assert len(Interval(5, 9)) == 5

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Interval(5, 4)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Interval(-1, 4)

    def test_contains(self):
        ival = Interval(10, 20)
        assert ival.contains(10) and ival.contains(20) and ival.contains(15)
        assert not ival.contains(9) and not ival.contains(21)

    def test_overlaps(self):
        assert Interval(0, 10).overlaps(Interval(10, 20))
        assert not Interval(0, 9).overlaps(Interval(10, 20))

    def test_touches_adjacent(self):
        assert Interval(0, 9).touches(Interval(10, 20))
        assert not Interval(0, 8).touches(Interval(10, 20))


class TestNormalization:
    def test_merges_overlapping(self):
        s = IntervalSet([Interval(0, 10), Interval(5, 20)])
        assert s.intervals == (Interval(0, 20),)

    def test_merges_adjacent(self):
        s = IntervalSet([Interval(0, 9), Interval(10, 20)])
        assert s.intervals == (Interval(0, 20),)

    def test_keeps_gaps(self):
        s = IntervalSet([Interval(0, 5), Interval(7, 9)])
        assert len(s.intervals) == 2

    def test_sorting(self):
        s = IntervalSet([Interval(100, 200), Interval(0, 5)])
        assert s.intervals[0].lo == 0

    def test_representation_equality_is_set_equality(self):
        a = IntervalSet([Interval(0, 5), Interval(6, 10)])
        b = IntervalSet([Interval(0, 10)])
        assert a == b


class TestConstructors:
    def test_of(self):
        s = IntervalSet.of(3, 1, 2)
        assert s.intervals == (Interval(1, 3),)

    def test_empty(self):
        assert IntervalSet.empty().is_empty()
        assert not IntervalSet.empty()

    def test_full_width(self):
        assert len(IntervalSet.full(8)) == 256

    def test_from_prefix(self):
        s = IntervalSet.from_prefix(Prefix.parse("10.0.0.0/24"))
        assert len(s) == 256

    def test_from_prefixes_merges(self):
        s = IntervalSet.from_prefixes(
            [Prefix.parse("10.0.0.0/25"), Prefix.parse("10.0.0.128/25")]
        )
        assert s == IntervalSet.from_prefix(Prefix.parse("10.0.0.0/24"))


class TestQueries:
    def test_contains_binary_search(self):
        s = IntervalSet([Interval(0, 5), Interval(100, 110), Interval(1000, 1000)])
        for value in (0, 5, 100, 110, 1000):
            assert value in s
        for value in (6, 99, 111, 999, 1001):
            assert value not in s

    def test_min_max_sample(self):
        s = IntervalSet([Interval(10, 20), Interval(5, 7)])
        assert s.min() == 5
        assert s.max() == 20
        assert s.sample() == 5

    def test_min_of_empty_raises(self):
        with pytest.raises(ValueError):
            IntervalSet.empty().min()

    def test_issubset(self):
        small = IntervalSet.span(5, 10)
        big = IntervalSet.span(0, 20)
        assert small.issubset(big)
        assert not big.issubset(small)

    def test_isdisjoint(self):
        assert IntervalSet.span(0, 5).isdisjoint(IntervalSet.span(6, 10))
        assert not IntervalSet.span(0, 6).isdisjoint(IntervalSet.span(6, 10))


class TestAlgebra:
    def test_union(self):
        a = IntervalSet.span(0, 5)
        b = IntervalSet.span(10, 15)
        assert len(a | b) == 12

    def test_union_identity(self):
        a = IntervalSet.span(3, 9)
        assert (a | IntervalSet.empty()) == a
        assert (IntervalSet.empty() | a) == a

    def test_intersection(self):
        a = IntervalSet.span(0, 10)
        b = IntervalSet.span(5, 15)
        assert (a & b) == IntervalSet.span(5, 10)

    def test_intersection_disjoint_is_empty(self):
        assert (IntervalSet.span(0, 4) & IntervalSet.span(5, 9)).is_empty()

    def test_difference_splits(self):
        a = IntervalSet.span(0, 10)
        b = IntervalSet.span(4, 6)
        diff = a - b
        assert diff.intervals == (Interval(0, 3), Interval(7, 10))

    def test_difference_multiple_subtrahends(self):
        a = IntervalSet.span(0, 100)
        b = IntervalSet([Interval(10, 20), Interval(30, 40)])
        diff = a - b
        assert 15 not in diff and 35 not in diff
        assert 25 in diff and 0 in diff and 100 in diff
        assert len(diff) == 101 - 22

    def test_complement(self):
        s = IntervalSet.span(0, (1 << 32) - 2)
        assert s.complement() == IntervalSet.of((1 << 32) - 1)

    def test_demorgan_on_samples(self):
        a = IntervalSet([Interval(0, 50), Interval(100, 200)])
        b = IntervalSet([Interval(25, 125)])
        left = (a | b).complement(16)
        right = a.complement(16) & b.complement(16)
        assert left == right


class TestPrefixDecomposition:
    def test_exact_prefix(self):
        s = IntervalSet.from_prefix(Prefix.parse("10.0.0.0/24"))
        assert s.to_prefixes() == [Prefix.parse("10.0.0.0/24")]

    def test_non_aligned_interval(self):
        s = IntervalSet.span(1, 6)
        prefixes = s.to_prefixes()
        covered = IntervalSet.from_prefixes(prefixes)
        assert covered == s
        assert len(prefixes) == 4  # /32, /31, /30 split: 1, 2-3, 4-5, 6

    def test_roundtrip_arbitrary(self):
        s = IntervalSet([Interval(3, 77), Interval(1000, 4097)])
        assert IntervalSet.from_prefixes(s.to_prefixes()) == s


class TestAtoms:
    def test_partition_covers_universe(self):
        sets = [IntervalSet.span(10, 20), IntervalSet.span(15, 30)]
        pieces = atoms(sets, width=8)
        total = IntervalSet.empty()
        for piece in pieces:
            assert piece.intersection(total).is_empty()  # disjoint
            total = total | piece
        assert total == IntervalSet.full(8)

    def test_inputs_are_unions_of_atoms(self):
        sets = [
            IntervalSet([Interval(10, 20), Interval(40, 50)]),
            IntervalSet.span(15, 45),
        ]
        pieces = atoms(sets, width=8)
        for s in sets:
            rebuilt = IntervalSet.empty()
            for piece in pieces:
                overlap = piece & s
                assert overlap.is_empty() or overlap == piece
                rebuilt = rebuilt | overlap
            assert rebuilt == s

    def test_no_inputs_single_atom(self):
        pieces = atoms([], width=8)
        assert pieces == [IntervalSet.full(8)]
