"""Cluster, scheduler, pod, and KNE deployment tests."""

import pytest

from repro.kube.cluster import KubeCluster, KubeNode, e2_standard_32
from repro.kube.pod import Pod, PodPhase
from repro.kube.scheduler import Scheduler, UnschedulableError
from repro.kube.kne import DeployTimeout, KneDeployment
from repro.protocols.timers import FAST_TIMERS
from repro.topo.builder import line_topology
from repro.corpus.fig3 import fig3_scenario
from repro.vendors.quirks import quirks_for


def arista_pod(name):
    quirks = quirks_for("arista")
    return Pod(
        name=name,
        vendor="arista",
        cpu=quirks.container_cpu,
        memory_gb=quirks.container_memory_gb,
    )


class TestNodeResources:
    def test_allocatable_excludes_system_reserved(self):
        node = e2_standard_32()
        assert node.allocatable_cpu == 30.0
        assert node.allocatable_memory_gb == 120.0

    def test_allocate_release(self):
        node = e2_standard_32()
        node.allocate(10.0, 40.0)
        assert node.free_cpu == 20.0
        node.release(10.0, 40.0)
        assert node.free_cpu == 30.0

    def test_overallocate_raises(self):
        node = KubeNode(name="n", vcpus=4, memory_gb=8,
                        system_reserved_cpu=1, system_reserved_memory_gb=1)
        with pytest.raises(ValueError):
            node.allocate(4.0, 1.0)


class TestScheduler:
    def test_paper_capacity_60_arista_routers_per_e2_standard_32(self):
        """§5: 0.5 vCPU + 1 GB per cEOS ⇒ 60 routers on one 32-vCPU box."""
        cluster = KubeCluster(nodes=[e2_standard_32()])
        scheduler = Scheduler(cluster)
        assert scheduler.capacity_for(0.5, 1.0) == 60

    def test_61st_router_unschedulable(self):
        cluster = KubeCluster(nodes=[e2_standard_32()])
        scheduler = Scheduler(cluster)
        pods = [arista_pod(f"r{i}") for i in range(61)]
        with pytest.raises(UnschedulableError):
            scheduler.schedule(pods)

    def test_60_routers_fit(self):
        cluster = KubeCluster(nodes=[e2_standard_32()])
        placements = Scheduler(cluster).schedule(
            [arista_pod(f"r{i}") for i in range(60)]
        )
        assert len(placements) == 60

    def test_1000_devices_fit_17_nodes(self):
        """§5: 1,000 devices converged on a 17-node cluster."""
        cluster = KubeCluster.of_size(17)
        placements = Scheduler(cluster).schedule(
            [arista_pod(f"r{i}") for i in range(1000)]
        )
        assert len(placements) == 1000
        assert len(set(placements.values())) == 17

    def test_1000_devices_do_not_fit_16_nodes(self):
        cluster = KubeCluster.of_size(16)
        with pytest.raises(UnschedulableError):
            Scheduler(cluster).schedule(
                [arista_pod(f"r{i}") for i in range(1000)]
            )

    def test_spreads_across_nodes(self):
        cluster = KubeCluster.of_size(2)
        placements = Scheduler(cluster).schedule(
            [arista_pod(f"r{i}") for i in range(10)]
        )
        assert len(set(placements.values())) == 2

    def test_unschedulable_message_names_pod_and_capacity(self):
        cluster = KubeCluster(
            nodes=[KubeNode(name="tiny", vcpus=2.5, memory_gb=9)]
        )
        with pytest.raises(UnschedulableError) as exc:
            Scheduler(cluster).schedule([arista_pod(f"r{i}") for i in range(3)])
        assert "tiny" in str(exc.value)


class TestDeployment:
    @pytest.fixture(scope="class")
    def deployment(self):
        scenario = fig3_scenario()
        dep = KneDeployment(scenario.topology, timers=FAST_TIMERS, seed=5)
        dep.deploy()
        dep.wait_converged(quiet_period=5.0)
        return dep

    def test_startup_time_modeled(self, deployment):
        # Infra init + image pull + boot: several minutes minimum.
        assert deployment.report.startup_seconds > 400

    def test_pods_running(self, deployment):
        assert all(
            p.phase is PodPhase.RUNNING for p in deployment.pods.values()
        )

    def test_configs_applied(self, deployment):
        assert all(r.config_text for r in deployment.routers.values())

    def test_ssh_works(self, deployment):
        out = deployment.ssh("r2").execute("show ip route")
        assert "2.2.2.1/32" in out

    def test_ssh_unknown_node(self, deployment):
        with pytest.raises(KeyError):
            deployment.ssh("r99")

    def test_link_down_and_up(self, deployment):
        from repro.net.addr import parse_ipv4

        deployment.link_down("r2", "r3")
        deployment.wait_converged(quiet_period=5.0)
        assert not deployment.fabric.reachable("r1", parse_ipv4("2.2.2.3"))
        deployment.link_up("r2", "r3")
        deployment.wait_converged(quiet_period=5.0)
        assert deployment.fabric.reachable("r1", parse_ipv4("2.2.2.3"))

    def test_deploy_twice_rejected(self, deployment):
        with pytest.raises(RuntimeError):
            deployment.deploy()

    def test_unknown_link_cut_rejected(self, deployment):
        with pytest.raises(KeyError):
            deployment.link_down("r1", "r3")


class TestDeploymentScaling:
    def test_more_pods_longer_startup(self):
        small = KneDeployment(line_topology(3), timers=FAST_TIMERS, seed=1)
        small_report = small.deploy()
        large = KneDeployment(line_topology(20), timers=FAST_TIMERS, seed=1)
        large_report = large.deploy()
        assert large_report.startup_seconds > small_report.startup_seconds

    def test_multi_node_placement_recorded(self):
        topo = line_topology(100)
        cluster = KubeCluster.of_size(2)
        dep = KneDeployment(topo, cluster=cluster, timers=FAST_TIMERS)
        report = dep.deploy()
        assert report.nodes_used == 2


class TestLinkFlapAndNodeLifecycle:
    """The correctness bedrock the what-if campaign's revert stands on:
    after a full down->up flap (or node kill + restore), protocols must
    re-form adjacencies and the dataplane must return to the exact
    baseline fingerprint."""

    @pytest.fixture()
    def deployment(self):
        scenario = fig3_scenario()
        dep = KneDeployment(scenario.topology, timers=FAST_TIMERS, seed=5)
        dep.deploy()
        dep.wait_converged(quiet_period=5.0)
        return dep

    @staticmethod
    def _fingerprint(deployment):
        from repro.dataplane.model import Dataplane
        from repro.gnmi.server import dump_afts

        return Dataplane.from_afts(dump_afts(deployment)).fib_fingerprint()

    def test_flap_reforms_adjacency_and_restores_fingerprint(self, deployment):
        from repro.obs import tracing

        baseline = self._fingerprint(deployment)
        deployment.link_down("r2", "r3")
        deployment.wait_converged(quiet_period=5.0)
        assert self._fingerprint(deployment) != baseline
        with tracing() as tracer:
            deployment.link_up("r2", "r3")
            deployment.wait_converged(quiet_period=5.0)
        reformed = {
            e.node for e in tracer.events_in("isis.adjacency.up")
        }
        assert {"r2", "r3"} <= reformed
        assert self._fingerprint(deployment) == baseline

    def test_node_down_and_up_restores_fingerprint(self, deployment):
        from repro.net.addr import parse_ipv4

        baseline = self._fingerprint(deployment)
        links = deployment.node_down("r3")
        assert len(links) == 1
        assert deployment.pods["r3"].phase is PodPhase.FAILED
        assert deployment.failed_nodes() == {"r3"}
        # Idempotent: a second kill is a no-op.
        assert deployment.node_down("r3") == []
        deployment.wait_converged(quiet_period=5.0)
        assert not deployment.fabric.reachable("r1", parse_ipv4("2.2.2.3"))
        restored = deployment.node_up("r3")
        assert len(restored) == 1
        assert deployment.failed_nodes() == set()
        assert deployment.node_up("r3") == []
        deployment.wait_converged(quiet_period=5.0)
        assert deployment.fabric.reachable("r1", parse_ipv4("2.2.2.3"))
        assert self._fingerprint(deployment) == baseline

    def test_dump_afts_skips_failed_nodes(self, deployment):
        from repro.gnmi.server import dump_afts

        deployment.node_down("r3")
        deployment.wait_converged(quiet_period=5.0)
        live = sorted(set(deployment.routers) - deployment.failed_nodes())
        afts = dump_afts(deployment, nodes=live)
        assert set(afts) == {"r1", "r2"}

    def test_node_down_unknown_node_rejected(self, deployment):
        with pytest.raises(KeyError):
            deployment.node_down("r99")

    def test_pod_health_probe(self, deployment):
        assert set(deployment.pod_health().values()) == {"healthy"}
        deployment.node_down("r3")
        health = deployment.pod_health()
        assert health["r3"] == "failed"
        assert health["r1"] == "healthy"

    def test_restart_and_reconverge_restores_fingerprint(self, deployment):
        baseline = self._fingerprint(deployment)
        deployment.node_down("r3")
        deployment.wait_converged(quiet_period=5.0)
        elapsed = deployment.restart_and_reconverge("r3", quiet_period=5.0)
        assert elapsed > 0
        assert deployment.pod_health()["r3"] == "healthy"
        assert deployment.report.converged
        assert self._fingerprint(deployment) == baseline


class TestDeployTimeout:
    def test_deadline_names_stuck_pods(self):
        dep = KneDeployment(line_topology(3), timers=FAST_TIMERS, seed=1)
        with pytest.raises(DeployTimeout) as excinfo:
            dep.deploy(max_time=1.0)
        assert excinfo.value.pending
        assert set(excinfo.value.pending) <= {"r1", "r2", "r3"}

    def test_deadline_is_simulated_time(self):
        # A generous deadline deploys normally and reports completion.
        dep = KneDeployment(line_topology(3), timers=FAST_TIMERS, seed=1)
        report = dep.deploy(max_time=100_000.0)
        assert report.startup_seconds > 0
        assert dep.pod_health() and set(
            dep.pod_health().values()
        ) == {"healthy"}
