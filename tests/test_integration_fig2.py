"""End-to-end reproduction of the paper's E1 experiment (Fig. 2).

Healthy vs. buggy (eBGP session r2-r3 down) configurations through the
full model-free pipeline, compared with differential reachability — the
exact query the paper ran.
"""

import pytest

from repro.core.differential import compare_snapshots
from repro.net.addr import parse_ipv4
from repro.net.headerspace import HeaderSpace
from repro.net.addr import Prefix
from repro.pybf.session import Session


@pytest.fixture(scope="module")
def snapshots(fig2_snapshots):
    return fig2_snapshots


@pytest.fixture(scope="module")
def diff_rows(snapshots):
    healthy, buggy = snapshots
    return compare_snapshots(healthy, buggy)


def loopback_space(scenario, names):
    space = HeaderSpace.empty()
    for name in names:
        space = space | HeaderSpace.dst_prefix(
            Prefix.parse(scenario.loopbacks[name] + "/32")
        )
    return space


class TestHealthySnapshot:
    def test_cross_as_loopback_reachability(self, snapshots, fig2):
        healthy, _ = snapshots
        from repro.verify.traceroute import traceroute

        for src, dst in [("r1", "r6"), ("r6", "r1"), ("r2", "r5")]:
            result = traceroute(
                healthy.dataplane, src, fig2.loopbacks[dst]
            )
            assert result.success, (src, dst)

    def test_as_path_through_chain(self, snapshots, fig2):
        healthy, _ = snapshots
        from repro.verify.traceroute import traceroute

        result = traceroute(healthy.dataplane, "r1", fig2.loopbacks["r6"])
        devices = [h.device for h in result.traces[0].hops]
        assert devices == ["r1", "r2", "r3", "r4", "r5", "r6"]


class TestDifferentialFindsTheRegression:
    def test_as3_loses_as2(self, diff_rows, fig2):
        """The paper's reported output: loss of connectivity from
        routers in AS3 to routers in AS2."""
        as2_loopbacks = {
            parse_ipv4(fig2.loopbacks[n]) for n in fig2.as_members[65002]
        }
        for ingress in fig2.as_members[65003]:
            lost = set()
            for row in diff_rows:
                if row.ingress == ingress and row.regressed:
                    lost.update(a for a in as2_loopbacks if a in row.dst_set)
            assert lost == as2_loopbacks, ingress

    def test_every_difference_is_a_regression(self, diff_rows):
        assert diff_rows
        assert all(row.regressed for row in diff_rows)

    def test_intra_as_traffic_unaffected(self, diff_rows, fig2):
        for asn, members in fig2.as_members.items():
            del asn
            loopbacks = {parse_ipv4(fig2.loopbacks[m]) for m in members}
            for row in diff_rows:
                if row.ingress in members:
                    assert not (loopbacks & set(
                        a for a in loopbacks if a in row.dst_set
                    )), "intra-AS loopback must not regress"

    def test_witness_flows_have_traces(self, diff_rows):
        for row in diff_rows:
            assert row.reference_traces
            assert row.reference_traces[0].hops


class TestViaPybatfishFrontend:
    def test_differential_reachability_question(self, snapshots):
        healthy, buggy = snapshots
        bf = Session()
        bf.init_snapshot(healthy, name="reference")
        bf.init_snapshot(buggy, name="candidate")
        answer = bf.q.differentialReachability().answer(
            snapshot="candidate", reference_snapshot="reference"
        )
        frame = answer.frame()
        assert len(frame) > 0
        assert all(row["Regressed"] for row in frame)

    def test_scoped_to_one_destination(self, snapshots, fig2):
        healthy, buggy = snapshots
        bf = Session()
        bf.init_snapshot(healthy, name="reference")
        bf.init_snapshot(buggy, name="candidate")
        answer = bf.q.differentialReachability(
            dst=fig2.loopbacks["r1"] + "/32", ingress="r3"
        ).answer(snapshot="candidate", reference_snapshot="reference")
        rows = answer.frame().rows
        assert len(rows) == 1
        assert rows[0]["Snapshot_Dispositions"] == "no-route"
