"""Tests for repro.net.headerspace."""

from repro.net.addr import Prefix, parse_ipv4
from repro.net.headerspace import Field, HeaderSpace, Packet, Rect
from repro.net.intervals import IntervalSet


def dst(prefix_text: str) -> HeaderSpace:
    return HeaderSpace.dst_prefix(Prefix.parse(prefix_text))


class TestRect:
    def test_default_is_full(self):
        assert Rect().is_full()
        assert not Rect().is_empty()

    def test_with_field(self):
        rect = Rect().with_field(Field.DST_PORT, IntervalSet.of(80))
        assert rect.get(Field.DST_PORT) == IntervalSet.of(80)
        assert rect.get(Field.SRC_PORT) == IntervalSet.full(16)

    def test_intersect(self):
        a = Rect(dst_ip=IntervalSet.span(0, 100))
        b = Rect(dst_ip=IntervalSet.span(50, 150))
        assert a.intersect(b).dst_ip == IntervalSet.span(50, 100)

    def test_intersect_disjoint_empty(self):
        a = Rect(dst_ip=IntervalSet.span(0, 10))
        b = Rect(dst_ip=IntervalSet.span(20, 30))
        assert a.intersect(b).is_empty()

    def test_subtract_single_field(self):
        a = Rect(dst_ip=IntervalSet.span(0, 100))
        b = Rect(dst_ip=IntervalSet.span(40, 60))
        pieces = a.subtract(b)
        covered = IntervalSet.empty()
        for piece in pieces:
            covered = covered | piece.dst_ip
        assert covered == IntervalSet.span(0, 100) - IntervalSet.span(40, 60)

    def test_subtract_no_overlap_returns_self(self):
        a = Rect(dst_ip=IntervalSet.span(0, 10))
        b = Rect(dst_ip=IntervalSet.span(20, 30))
        assert a.subtract(b) == [a]

    def test_subtract_multi_field_disjoint_pieces(self):
        a = Rect()
        b = Rect(
            dst_ip=IntervalSet.span(0, 100),
            dst_port=IntervalSet.of(443),
        )
        pieces = a.subtract(b)
        # Pieces must be pairwise disjoint and not cover b.
        for i, first in enumerate(pieces):
            assert first.intersect(b).is_empty()
            for second in pieces[i + 1 :]:
                assert first.intersect(second).is_empty()

    def test_sample_within(self):
        rect = Rect(dst_ip=IntervalSet.span(100, 200))
        packet = rect.sample()
        assert rect.contains_packet(packet)

    def test_contains_packet(self):
        rect = Rect(ip_proto=IntervalSet.of(17))
        assert rect.contains_packet(Packet(dst_ip=0, ip_proto=17))
        assert not rect.contains_packet(Packet(dst_ip=0, ip_proto=6))


class TestHeaderSpace:
    def test_empty(self):
        assert HeaderSpace.empty().is_empty()
        assert HeaderSpace.empty().sample() is None

    def test_full_contains_everything(self):
        assert HeaderSpace.full().contains_packet(Packet(dst_ip=12345))

    def test_dst_prefix(self):
        space = dst("10.0.0.0/24")
        assert space.contains_packet(Packet(dst_ip=parse_ipv4("10.0.0.7")))
        assert not space.contains_packet(Packet(dst_ip=parse_ipv4("10.0.1.0")))

    def test_union(self):
        space = dst("10.0.0.0/24") | dst("10.0.1.0/24")
        assert space.dst_values() == IntervalSet.from_prefix(
            Prefix.parse("10.0.0.0/23")
        )

    def test_intersection(self):
        space = dst("10.0.0.0/8") & dst("10.5.0.0/16")
        assert space.dst_values() == IntervalSet.from_prefix(
            Prefix.parse("10.5.0.0/16")
        )

    def test_difference(self):
        space = dst("10.0.0.0/24") - dst("10.0.0.128/25")
        assert space.dst_values() == IntervalSet.from_prefix(
            Prefix.parse("10.0.0.0/25")
        )

    def test_difference_to_empty(self):
        assert (dst("10.0.0.0/24") - dst("10.0.0.0/24")).is_empty()

    def test_complement_roundtrip(self):
        space = dst("10.0.0.0/8")
        assert space.complement().complement().equivalent(space)

    def test_equivalent_different_representations(self):
        a = dst("10.0.0.0/25") | dst("10.0.0.128/25")
        b = dst("10.0.0.0/24")
        assert a.equivalent(b)

    def test_not_equivalent(self):
        assert not dst("10.0.0.0/24").equivalent(dst("10.0.0.0/25"))

    def test_sample_is_member(self):
        space = dst("172.16.0.0/12") - dst("172.16.0.0/16")
        packet = space.sample()
        assert packet is not None
        assert space.contains_packet(packet)

    def test_multi_dimensional_difference(self):
        http = HeaderSpace(
            (Rect(dst_port=IntervalSet.of(80)),)
        )
        space = HeaderSpace.full() - http
        assert not space.contains_packet(Packet(dst_ip=0, dst_port=80))
        assert space.contains_packet(Packet(dst_ip=0, dst_port=81))


class TestPacket:
    def test_str_format(self):
        packet = Packet(
            dst_ip=parse_ipv4("10.0.0.1"),
            src_ip=parse_ipv4("192.168.0.1"),
            dst_port=443,
        )
        text = str(packet)
        assert "10.0.0.1:443" in text
        assert "192.168.0.1" in text

    def test_ordering(self):
        assert Packet(dst_ip=1) < Packet(dst_ip=2)
