"""Verification-service tests: store, queue, coalescing, admission.

The blocking pattern used throughout: a one-worker pool occupied by a
job that waits on a ``threading.Event``, so everything submitted behind
it stays queued in a known order until the test releases the gate.
"""

from __future__ import annotations

import io
import json
import threading
import time

import pytest

from repro.obs import tracing
from repro.pybf.session import Session, SessionError
from repro.service import (
    DeploymentLostError,
    Job,
    JobFailedError,
    JobPriority,
    JobQueue,
    JobState,
    JobTimeoutError,
    OverloadedError,
    SnapshotStore,
    VerificationService,
)
from repro.service.frontend import ServiceFrontend, serve_loop
from repro.service.workers import WorkerPool
from repro.verify.engine import clear_engine_cache, engine_for


def _job(n, priority=JobPriority.INTERACTIVE, run=None, **kwargs):
    return Job(
        ("test", n), run or (lambda: n), priority=priority, **kwargs
    )


class _Gate:
    """A controllable job body: started fires on entry, release lets it
    return. Lets tests hold a worker mid-job deterministically."""

    def __init__(self, value="gated"):
        self.started = threading.Event()
        self.release = threading.Event()
        self.value = value

    def __call__(self):
        self.started.set()
        assert self.release.wait(10), "test forgot to release the gate"
        return self.value


@pytest.fixture()
def service():
    svc = VerificationService(workers=1, max_queue_depth=4)
    svc.start()
    yield svc
    svc.stop()


class TestSnapshotStore:
    def test_register_is_content_addressed(self, fig3_emulated, fig3_model):
        store = SnapshotStore(capacity=4)
        fp1 = store.register(fig3_emulated[1])
        fp2 = store.register(fig3_emulated[1])  # same content: a hit
        fp3 = store.register(fig3_model[1])
        assert fp1 == fp2 != fp3
        assert len(store) == 2
        assert store.hits == 1 and store.misses == 2

    def test_engine_pinned_per_entry(self, fig3_emulated):
        store = SnapshotStore(capacity=4)
        clear_engine_cache()
        with tracing() as tracer:
            first = store.engine(fig3_emulated[1])
            second = store.engine(fig3_emulated[1])
        assert first is second
        assert tracer.counters["verify.engine_builds"] == 1
        clear_engine_cache()

    def test_lru_eviction_counts(self, fig2_snapshots, fig3_emulated):
        healthy, buggy = fig2_snapshots
        store = SnapshotStore(capacity=2)
        with tracing() as tracer:
            store.register(healthy)
            store.register(buggy)
            store.register(fig3_emulated[1])  # evicts healthy (LRU)
        assert store.evictions == 1
        assert tracer.counters["service.store_evictions"] == 1
        assert healthy.dataplane.fib_fingerprint() not in store
        assert buggy.dataplane.fib_fingerprint() in store

    def test_get_unknown_raises_deployment_lost(self):
        store = SnapshotStore(capacity=2)
        with pytest.raises(DeploymentLostError):
            store.get(0xDEAD)
        assert store.misses == 1

    def test_env_capacity_knob(self, monkeypatch):
        monkeypatch.setenv("MFV_SERVICE_STORE", "3")
        assert SnapshotStore().capacity == 3
        monkeypatch.setenv("MFV_SERVICE_STORE", "junk")
        assert SnapshotStore().capacity == SnapshotStore(capacity=8).capacity

    def test_stats_shape(self, fig3_emulated):
        store = SnapshotStore(capacity=4)
        store.register(fig3_emulated[1])
        stats = store.stats()
        assert stats["resident"] == 1
        assert stats["engines_built"] == 0  # lazy until first question


class TestJobQueue:
    def test_priority_classes_strictly_ordered(self):
        queue = JobQueue(max_depth=8)
        campaign = _job(1, JobPriority.CAMPAIGN)
        diff = _job(2, JobPriority.DIFFERENTIAL)
        interactive = _job(3, JobPriority.INTERACTIVE)
        for job in (campaign, diff, interactive):
            queue.submit(job)
        assert queue.pop(0.1) is interactive
        assert queue.pop(0.1) is diff
        assert queue.pop(0.1) is campaign

    def test_fifo_within_class(self):
        queue = JobQueue(max_depth=8)
        jobs = [_job(n) for n in range(4)]
        for job in jobs:
            queue.submit(job)
        assert [queue.pop(0.1) for _ in jobs] == jobs

    def test_watermark_rejects_equal_priority_arrival(self):
        queue = JobQueue(max_depth=2)
        queue.submit(_job(1))
        queue.submit(_job(2))
        late = _job(3)
        accepted, shed = queue.submit(late)
        assert not accepted and shed is None
        assert late.state is JobState.REJECTED
        assert late.rejection["error"] == "overloaded"
        assert late.rejection["watermark"] == 2
        with pytest.raises(OverloadedError) as info:
            late.result(timeout=0)
        assert info.value.detail["queue_depth"] == 2

    def test_promote_requeues_queued_job(self):
        queue = JobQueue(max_depth=8)
        first = _job(1, JobPriority.CAMPAIGN)
        second = _job(2, JobPriority.CAMPAIGN)
        queue.submit(first)
        queue.submit(second)
        assert queue.promote(second, JobPriority.INTERACTIVE)
        assert second.priority is JobPriority.INTERACTIVE
        assert queue.pop(0.1) is second  # overtakes the older campaign
        assert queue.pop(0.1) is first

    def test_promote_leaves_running_and_worse_priorities_alone(self):
        queue = JobQueue(max_depth=8)
        queued = _job(1, JobPriority.DIFFERENTIAL)
        queue.submit(queued)
        # Demotion is not a thing.
        assert not queue.promote(queued, JobPriority.CAMPAIGN)
        assert queued.priority is JobPriority.DIFFERENTIAL
        # A job a worker already claimed is not in the heap: untouched.
        popped = queue.pop(0.1)
        assert popped is queued
        assert not queue.promote(popped, JobPriority.INTERACTIVE)
        assert popped.priority is JobPriority.DIFFERENTIAL

    def test_watermark_sheds_newest_lowest_priority(self):
        queue = JobQueue(max_depth=2)
        old_campaign = _job(1, JobPriority.CAMPAIGN)
        new_campaign = _job(2, JobPriority.CAMPAIGN)
        queue.submit(old_campaign)
        queue.submit(new_campaign)
        interactive = _job(3, JobPriority.INTERACTIVE)
        accepted, shed = queue.submit(interactive)
        assert accepted and shed is new_campaign  # newest of the lowest
        assert shed.rejection["shed_by"] == interactive.id
        assert queue.pop(0.1) is interactive
        assert queue.pop(0.1) is old_campaign


class TestServiceExecution:
    def test_submit_callable_round_trip(self, service):
        job = service.submit_callable(
            lambda: 41 + 1, signature=("answer",), label="answer"
        )
        assert job.result(timeout=5).value == 42

    def test_coalescing_attaches_to_inflight(self, service):
        gate = _Gate()
        blocker = service.submit_callable(
            gate, signature=("blocker",), cacheable=False
        )
        assert gate.started.wait(5)
        jobs = [
            service.submit_callable(lambda: "x", signature=("dup",))
            for _ in range(3)
        ]
        assert len({job.id for job in jobs}) == 1  # one shared execution
        gate.release.set()
        result = jobs[0].result(timeout=5)
        assert result.value == "x" and result.coalesced == 3
        assert service.counters["coalesced"] == 2
        blocker.result(timeout=5)

    def test_result_cache_serves_repeats(self, service):
        first = service.submit_callable(lambda: "v", signature=("rc",))
        assert first.result(timeout=5).value == "v"
        # Settle the on_done bookkeeping before resubmitting.
        repeat = service.submit_callable(
            lambda: pytest.fail("must not re-run"), signature=("rc",)
        )
        result = repeat.result(timeout=5)
        assert result.value == "v" and result.cached
        assert service.counters["result_cache_hits"] == 1

    def test_retry_on_deployment_lost(self, service):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise DeploymentLostError("evicted")
            return "recovered"

        job = service.submit_callable(
            flaky, signature=("flaky",), cacheable=False
        )
        result = job.result(timeout=5)
        assert result.value == "recovered"
        assert result.attempts == 3
        assert service.counters["retries"] == 2

    def test_retries_exhausted_surface_failure(self, service):
        def doomed():
            raise DeploymentLostError("gone for good")

        job = service.submit_callable(
            doomed, signature=("doomed",), cacheable=False
        )
        with pytest.raises(JobFailedError) as info:
            job.result(timeout=5)
        assert isinstance(info.value.__cause__, DeploymentLostError)
        assert job.attempts == 3  # initial try + max_retries

    def test_queued_timeout_fails_structured(self, service):
        gate = _Gate()
        blocker = service.submit_callable(
            gate, signature=("blk",), cacheable=False
        )
        assert gate.started.wait(5)
        stale = service.submit_callable(
            lambda: "late", signature=("late",), timeout=0.05,
            cacheable=False,
        )
        threading.Event().wait(0.1)  # let the deadline lapse while queued
        gate.release.set()
        with pytest.raises(JobTimeoutError):
            stale.result(timeout=5)
        blocker.result(timeout=5)

    def test_no_priority_inversion(self, service):
        """An interactive arrival overtakes already-queued campaign
        jobs: it must finish first even though it was submitted last."""
        gate = _Gate()
        blocker = service.submit_callable(
            gate, signature=("hold",), cacheable=False
        )
        assert gate.started.wait(5)
        campaigns = [
            service.submit_callable(
                lambda n=n: n, signature=("camp", n),
                priority=JobPriority.CAMPAIGN, cacheable=False,
            )
            for n in range(2)
        ]
        interactive = service.submit_callable(
            lambda: "now", signature=("now",),
            priority=JobPriority.INTERACTIVE, cacheable=False,
        )
        gate.release.set()
        for job in (interactive, *campaigns, blocker):
            job.result(timeout=5)
        assert interactive.finished_at < min(
            job.finished_at for job in campaigns
        )

    def test_coalesce_promotes_inflight_priority(self, service):
        """A higher-priority submission coalescing onto a queued
        lower-priority job promotes the shared execution — the
        interactive caller must not wait at campaign rank."""
        gate = _Gate()
        blocker = service.submit_callable(
            gate, signature=("hold",), cacheable=False
        )
        assert gate.started.wait(5)
        decoy = service.submit_callable(
            lambda: "decoy", signature=("decoy",),
            priority=JobPriority.CAMPAIGN, cacheable=False,
        )
        shared = service.submit_callable(
            lambda: "shared", signature=("shared",),
            priority=JobPriority.CAMPAIGN, cacheable=False,
        )
        rider = service.submit_callable(
            lambda: "shared", signature=("shared",),
            priority=JobPriority.INTERACTIVE, cacheable=False,
        )
        assert rider is shared  # coalesced onto the queued job...
        assert shared.priority is JobPriority.INTERACTIVE  # ...promoted
        gate.release.set()
        for job in (shared, decoy, blocker):
            job.result(timeout=5)
        assert shared.finished_at < decoy.finished_at

    def test_retry_backoff_respects_deadline(self):
        """The per-job timeout bounds retries: a lost deployment must
        not back off past the deadline (structured JobTimeoutError
        instead of retrying indefinitely)."""
        pool = WorkerPool(
            JobQueue(), workers=1, max_retries=50, retry_backoff=0.0
        )

        def lost():
            time.sleep(0.05)
            raise DeploymentLostError("still gone")

        job = Job(("deadline",), lost, timeout=0.02)
        pool._execute(job)
        assert job.state is JobState.FAILED
        assert isinstance(job.error, JobTimeoutError)
        assert job.attempts == 1  # never retried past the deadline

    def test_keyboard_interrupt_settles_job_and_propagates(self):
        """KeyboardInterrupt in a job is not swallowed as a mere job
        failure: waiters are settled, then the interrupt propagates to
        terminate the worker loop."""
        pool = WorkerPool(JobQueue(), workers=1)

        def interrupted():
            raise KeyboardInterrupt

        job = Job(("ki",), interrupted)
        with pytest.raises(KeyboardInterrupt):
            pool._execute(job)
        assert job.state is JobState.FAILED  # waiters do not hang
        assert isinstance(job.error, KeyboardInterrupt)

    def test_overload_burst_structured_rejections(self, service):
        """A burst past the watermark gets structured ``overloaded``
        rejections and the queue depth stays bounded — never an
        unbounded backlog, never a silent drop."""
        gate = _Gate()
        service.submit_callable(gate, signature=("wall",), cacheable=False)
        assert gate.started.wait(5)
        burst = [
            service.submit_callable(
                lambda n=n: n, signature=("burst", n),
                priority=JobPriority.CAMPAIGN, cacheable=False,
            )
            for n in range(20)
        ]
        assert service.queue.depth <= service.queue.max_depth
        rejected = [job for job in burst if job.state is JobState.REJECTED]
        assert rejected
        with pytest.raises(OverloadedError) as info:
            rejected[0].result(timeout=0)
        assert info.value.detail["error"] == "overloaded"
        assert info.value.detail["watermark"] == 4
        assert service.counters["jobs_rejected"] == len(rejected)
        gate.release.set()
        survivors = [job for job in burst if job.state is not JobState.REJECTED]
        for job in survivors:
            job.result(timeout=5)


class TestServiceQuestions:
    def test_question_round_trip_uses_store(self, fig2_snapshots):
        healthy, buggy = fig2_snapshots
        clear_engine_cache()
        with tracing() as tracer:
            with VerificationService(workers=2) as svc:
                svc.register_snapshot(healthy, name="healthy")
                svc.register_snapshot(buggy, name="buggy")
                jobs = [
                    svc.submit("reachability", snapshot="healthy"),
                    svc.submit("detectLoops", snapshot="healthy"),
                    svc.submit("routes", {"nodes": "r1"}, snapshot="healthy"),
                ]
                for job in jobs:
                    assert job.result(timeout=10).value is not None
        # Three questions, one forwarding state: one engine build.
        assert tracer.counters["verify.engine_builds"] == 1
        clear_engine_cache()

    def test_unknown_question_rejected_at_submit(self, fig2_snapshots):
        with VerificationService(workers=1) as svc:
            svc.register_snapshot(fig2_snapshots[0], name="s")
            with pytest.raises(SessionError, match="unknown question"):
                svc.submit("nosuchquestion", snapshot="s")

    def test_differential_defaults_to_differential_priority(
        self, fig2_snapshots
    ):
        healthy, buggy = fig2_snapshots
        with VerificationService(workers=1) as svc:
            svc.register_snapshot(healthy, name="healthy")
            svc.register_snapshot(buggy, name="buggy")
            job = svc.submit(
                "differentialReachability",
                snapshot="buggy",
                reference_snapshot="healthy",
            )
            assert job.priority is JobPriority.DIFFERENTIAL
            rows = job.result(timeout=10).value.frame().rows
            assert any(row["Regressed"] for row in rows)

    def test_signatures_coalesce_across_snapshot_names(self, fig2_snapshots):
        """Two names over identical forwarding content are the same
        work: the second submission is a cache hit, not a re-run."""
        healthy, _ = fig2_snapshots
        with VerificationService(workers=1) as svc:
            svc.register_snapshot(healthy, name="a")
            svc.register_snapshot(healthy, name="b")
            first = svc.submit("reachability", snapshot="a")
            first.result(timeout=10)
            second = svc.submit("reachability", snapshot="b")
            assert second.result(timeout=10).cached

    def test_replaced_snapshot_mid_flight_fails_not_poisons_cache(
        self, fig2_snapshots
    ):
        """register_snapshot(overwrite=True) between submit and run is
        the documented replacement flow — the in-flight job keyed on
        the OLD content must fail (DeploymentLostError), never cache
        the NEW content's answer under the old content's signature."""
        healthy, buggy = fig2_snapshots
        svc = VerificationService(
            workers=1, max_retries=1, retry_backoff=0.0
        )
        svc.start()
        try:
            gate = _Gate()
            svc.submit_callable(gate, signature=("g",), cacheable=False)
            assert gate.started.wait(5)
            svc.register_snapshot(healthy, name="victim")
            job = svc.submit("reachability", snapshot="victim")
            svc.register_snapshot(buggy, name="victim")  # silent replace
            gate.release.set()
            with pytest.raises(JobFailedError) as info:
                job.result(timeout=5)
            assert isinstance(info.value.__cause__, DeploymentLostError)
            # The healthy-content signature must NOT have been filled
            # with the buggy snapshot's answer: ask the same question
            # against healthy content under a fresh name and check it
            # is a real (uncached) run with healthy's answer.
            svc.register_snapshot(healthy, name="restored")
            fresh = svc.submit("reachability", snapshot="restored")
            result = fresh.result(timeout=10)
            assert not result.cached
            assert len(result.value.frame().rows) == 6  # healthy answer
        finally:
            svc.stop()

    def test_deleted_snapshot_mid_flight_retries_then_fails(
        self, fig2_snapshots
    ):
        healthy, _ = fig2_snapshots
        svc = VerificationService(
            workers=1, max_retries=1, retry_backoff=0.0
        )
        svc.start()
        try:
            gate = _Gate()
            svc.submit_callable(gate, signature=("g",), cacheable=False)
            assert gate.started.wait(5)
            svc.register_snapshot(healthy, name="victim")
            job = svc.submit("reachability", snapshot="victim")
            svc.session.delete_snapshot("victim")
            gate.release.set()
            with pytest.raises(JobFailedError) as info:
                job.result(timeout=5)
            assert isinstance(info.value.__cause__, DeploymentLostError)
            assert job.attempts == 2  # retried once, then surfaced
        finally:
            svc.stop()


class TestConcurrentEngineAccess:
    def test_engine_for_races_coalesce_to_one_build(self, fig2_snapshots):
        """Satellite: concurrent engine_for calls for one fingerprint
        must coalesce onto a single build returning one shared object."""
        healthy, _ = fig2_snapshots
        clear_engine_cache()
        barrier = threading.Barrier(6)
        engines = []

        def hammer():
            barrier.wait(5)
            engines.append(engine_for(healthy.dataplane))

        with tracing() as tracer:
            threads = [threading.Thread(target=hammer) for _ in range(6)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(10)
        assert len(engines) == 6
        assert len({id(engine) for engine in engines}) == 1
        assert tracer.counters["verify.engine_builds"] == 1
        clear_engine_cache()

    def test_store_races_share_one_entry(self, fig2_snapshots):
        healthy, _ = fig2_snapshots
        store = SnapshotStore(capacity=4)
        clear_engine_cache()
        barrier = threading.Barrier(6)
        engines = []

        def hammer():
            barrier.wait(5)
            engines.append(store.engine(healthy))

        with tracing() as tracer:
            threads = [threading.Thread(target=hammer) for _ in range(6)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(10)
        assert len({id(engine) for engine in engines}) == 1
        assert tracer.counters["verify.engine_builds"] == 1
        assert len(store) == 1
        clear_engine_cache()


class TestSessionStoreWiring:
    def test_sessions_sharing_store_share_engines(self, fig2_snapshots):
        healthy, _ = fig2_snapshots
        store = SnapshotStore(capacity=4)
        one = Session(store=store)
        two = Session(store=store)
        one.init_snapshot(healthy, name="mine")
        two.init_snapshot(healthy, name="theirs")
        clear_engine_cache()
        with tracing() as tracer:
            assert one.get_engine("mine") is two.get_engine("theirs")
        assert tracer.counters["verify.engine_builds"] == 1
        clear_engine_cache()

    def test_pipeline_registers_snapshot_with_store(self, fig2):
        from repro.core.pipeline import ModelFreeBackend
        from repro.protocols.timers import FAST_TIMERS

        store = SnapshotStore(capacity=4)
        backend = ModelFreeBackend(
            fig2.topology, timers=FAST_TIMERS, quiet_period=5.0, store=store
        )
        snapshot = backend.run(snapshot_name="piped")
        assert snapshot.dataplane.fib_fingerprint() in store

    def test_model_backend_registers_with_store(self, fig3):
        from repro.core.pipeline import NativeBatfishBackend

        store = SnapshotStore(capacity=4)
        backend = NativeBatfishBackend(fig3.topology, store=store)
        snapshot = backend.run(snapshot_name="modeled")
        assert snapshot.dataplane.fib_fingerprint() in store


class TestCampaignJobs:
    def test_campaign_runs_as_batch_job(self, fig2):
        from repro.protocols.timers import FAST_TIMERS
        from repro.whatif import single_link_failures

        scenarios = list(single_link_failures(fig2.topology))[:1]
        with VerificationService(workers=1) as svc:
            job = svc.submit_campaign(
                fig2.topology,
                scenarios,
                timers=FAST_TIMERS,
                quiet_period=5.0,
            )
            assert job.priority is JobPriority.CAMPAIGN
            report = job.result(timeout=60).value
        assert len(report.verdicts) == 1
        # The campaign baseline became resident in the service store.
        assert svc.store.stats()["resident"] >= 1


class TestFrontend:
    def test_serve_loop_round_trip(self, fig2_snapshots, tmp_path):
        healthy, _ = fig2_snapshots
        path = tmp_path / "healthy.json"
        healthy.save(path)
        requests = [
            {"op": "load", "path": str(path), "name": "healthy"},
            {"op": "submit", "question": "reachability",
             "snapshot": "healthy"},
            {"op": "submit", "question": "reachability",
             "snapshot": "healthy", "wait": False},
            {"op": "result", "job": None, "timeout": 5},
            {"op": "nonsense"},
            {"op": "stats"},
            {"op": "shutdown"},
        ]
        stdin = io.StringIO(
            "\n".join(json.dumps(r) for r in requests)
            + "\nnot json\n"  # after shutdown: must not be reached
        )
        stdout = io.StringIO()
        with VerificationService(workers=1) as svc:
            handled = serve_loop(svc, stdin, stdout)
        responses = [
            json.loads(line) for line in stdout.getvalue().splitlines()
        ]
        assert handled == len(requests)  # loop stopped at shutdown
        load, answer, async_submit, late, bad, stats, bye = responses
        assert load["ok"] and load["snapshot"] == "healthy"
        assert answer["ok"] and len(answer["rows"]) == 6
        assert answer["state"] == "done"
        assert async_submit["ok"] and "rows" not in async_submit
        assert not late["ok"]  # unknown job id (None)
        assert not bad["ok"] and "unknown op" in bad["error"]
        assert stats["ok"] and stats["stats"]["jobs_submitted"] >= 1
        assert bye["ok"] and bye["stopped"]

    def test_frontend_does_not_retain_delivered_jobs(self, fig2_snapshots):
        """A long-lived serve session must not leak settled jobs: only
        async submissions are retained (bounded), and delivering a
        result drops the reference."""
        healthy, _ = fig2_snapshots
        with VerificationService(workers=1) as svc:
            svc.register_snapshot(healthy, name="healthy")
            frontend = ServiceFrontend(svc, max_pending=4)
            submit = {"op": "submit", "question": "reachability",
                      "snapshot": "healthy"}
            response, _ = frontend.handle(submit)
            assert response["ok"]
            assert not frontend._jobs  # wait=true delivered inline
            response, _ = frontend.handle({**submit, "wait": False})
            assert response["ok"] and len(frontend._jobs) == 1
            response, _ = frontend.handle(
                {"op": "result", "job": response["job"], "timeout": 10}
            )
            assert response["ok"]
            assert not frontend._jobs  # delivered: reference dropped
            # Async submissions never grow past the bound (these are
            # result-cache hits, so each settles instantly).
            for _ in range(10):
                frontend.handle({**submit, "wait": False})
            assert len(frontend._jobs) == 4

    def test_serve_loop_surfaces_overload(self, fig2_snapshots, tmp_path):
        healthy, _ = fig2_snapshots
        path = tmp_path / "healthy.json"
        healthy.save(path)
        svc = VerificationService(workers=1, max_queue_depth=1)
        svc.start()
        try:
            gate = _Gate()
            svc.submit_callable(gate, signature=("wall",), cacheable=False)
            assert gate.started.wait(5)
            svc.load_snapshot(path, name="healthy")
            requests = [
                {"op": "submit", "question": "reachability",
                 "snapshot": "healthy", "wait": False},
                {"op": "submit", "question": "detectLoops",
                 "snapshot": "healthy", "wait": False},
            ]
            stdin = io.StringIO(
                "\n".join(json.dumps(r) for r in requests) + "\n"
            )
            stdout = io.StringIO()
            serve_loop(svc, stdin, stdout)
            first, second = [
                json.loads(line) for line in stdout.getvalue().splitlines()
            ]
            assert first["ok"]
            assert not second["ok"]
            assert second["error"] == "overloaded"
            assert second["watermark"] == 1
            gate.release.set()
        finally:
            svc.stop()


class TestServiceObservability:
    def test_job_events_feed_timeline(self, fig2_snapshots):
        from repro.obs import ConvergenceTimeline

        healthy, _ = fig2_snapshots
        with tracing() as tracer:
            with VerificationService(workers=1) as svc:
                svc.register_snapshot(healthy, name="healthy")
                svc.submit(
                    "reachability", snapshot="healthy"
                ).result(timeout=10)
        timeline = ConvergenceTimeline.from_tracer(tracer)
        assert timeline.service_jobs
        event = timeline.service_jobs[-1].detail
        assert event["state"] == "done"
        assert event["label"] == "reachability"
        rendered = timeline.render()
        assert "Service jobs" in rendered
        assert "reachability" in rendered
