"""Arista EOS parser and CLI tests."""

import pytest

from repro.corpus.fig3 import R1_CONFIG
from repro.net.addr import Prefix, parse_ipv4
from repro.vendors.arista.config_parser import parse_arista_config

from tests.helpers import isis_config, mini_net


class TestInterfaceParsing:
    def test_stanza_applied_as_unit_address_before_no_switchport(self):
        """The Fig. 3 behaviour: real EOS accepts this ordering."""
        device, diagnostics = parse_arista_config(R1_CONFIG)
        eth2 = device.interfaces["Ethernet2"]
        assert eth2.is_routed
        assert eth2.address == parse_ipv4("100.64.0.1")
        assert eth2.prefix_length == 31
        assert not diagnostics

    def test_isis_enable_accepted(self):
        device, _ = parse_arista_config(R1_CONFIG)
        assert device.interfaces["Ethernet2"].isis is not None
        assert device.interfaces["Ethernet2"].isis.tag == "default"

    def test_ethernet_defaults_to_switchport(self):
        device, _ = parse_arista_config("interface Ethernet1\n   description x\n")
        assert device.interfaces["Ethernet1"].switchport

    def test_loopback_not_switchport(self):
        device, _ = parse_arista_config(
            "interface Loopback0\n   ip address 1.1.1.1/32\n"
        )
        assert device.interfaces["Loopback0"].is_routed

    def test_shutdown(self):
        device, _ = parse_arista_config(
            "interface Ethernet1\n   no switchport\n"
            "   ip address 10.0.0.1/24\n   shutdown\n"
        )
        assert not device.interfaces["Ethernet1"].is_routed

    def test_isis_metric_and_passive(self):
        device, _ = parse_arista_config(
            "interface Ethernet1\n   no switchport\n"
            "   ip address 10.0.0.1/24\n   isis enable default\n"
            "   isis metric 55\n   isis passive\n"
        )
        settings = device.interfaces["Ethernet1"].isis
        assert settings.metric == 55 and settings.passive

    def test_invalid_address_diagnosed(self):
        _, diagnostics = parse_arista_config(
            "interface Ethernet1\n   ip address not.an.ip/24\n"
        )
        assert any("Invalid address" in d.message for d in diagnostics)

    def test_unknown_interface_line_diagnosed(self):
        _, diagnostics = parse_arista_config(
            "interface Ethernet1\n   frobnicate on\n"
        )
        assert len(diagnostics) == 1


class TestRoutingStanzas:
    CONFIG = """\
hostname core1
ip routing
router isis default
   net 49.0001.0000.0000.0001.00
   address-family ipv4 unicast
router bgp 65001
   router-id 1.1.1.1
   maximum-paths 4
   neighbor 10.0.0.1 remote-as 65002
   neighbor 10.0.0.1 description upstream
   neighbor 2.2.2.2 remote-as 65001
   neighbor 2.2.2.2 update-source Loopback0
   neighbor 2.2.2.2 next-hop-self
   neighbor 2.2.2.2 send-community
   neighbor 2.2.2.2 route-map IMPORT in
   network 1.1.1.1/32
   redistribute connected
ip route 0.0.0.0/0 10.0.0.1
ip route 192.0.2.0/24 Null0
ip route 198.51.100.0/24 Ethernet7
"""

    def test_hostname(self):
        device, _ = parse_arista_config(self.CONFIG)
        assert device.hostname == "core1"

    def test_isis_process(self):
        device, _ = parse_arista_config(self.CONFIG)
        assert device.isis.net == "49.0001.0000.0000.0001.00"
        assert device.isis.system_id == "0000.0000.0001"

    def test_bgp_process(self):
        device, _ = parse_arista_config(self.CONFIG)
        bgp = device.bgp
        assert bgp.asn == 65001
        assert bgp.router_id == parse_ipv4("1.1.1.1")
        assert bgp.maximum_paths == 4
        assert bgp.redistribute_connected
        assert Prefix.parse("1.1.1.1/32") in bgp.networks

    def test_bgp_neighbors(self):
        device, _ = parse_arista_config(self.CONFIG)
        external = device.bgp.neighbors[parse_ipv4("10.0.0.1")]
        assert external.remote_as == 65002
        assert external.description == "upstream"
        internal = device.bgp.neighbors[parse_ipv4("2.2.2.2")]
        assert internal.update_source == "Loopback0"
        assert internal.next_hop_self and internal.send_community
        assert internal.route_map_in == "IMPORT"

    def test_static_routes(self):
        device, _ = parse_arista_config(self.CONFIG)
        statics = {str(s.prefix): s for s in device.static_routes}
        assert statics["0.0.0.0/0"].next_hop == parse_ipv4("10.0.0.1")
        assert statics["192.0.2.0/24"].discard
        assert statics["198.51.100.0/24"].interface == "Ethernet7"

    def test_clean_parse_no_diagnostics(self):
        _, diagnostics = parse_arista_config(self.CONFIG)
        assert diagnostics == []


class TestManagementBaggage:
    CONFIG = """\
daemon TerminAttr
   exec /usr/bin/TerminAttr
   no shutdown
daemon PowerManager
   exec /usr/bin/PowerManager
management api gnmi
   transport grpc default
management security
   ssl profile x
mpls ip
router traffic-engineering
   rsvp
service routing protocols model multi-agent
"""

    def test_daemons_recorded(self):
        device, diagnostics = parse_arista_config(self.CONFIG)
        assert device.daemons == ["TerminAttr", "PowerManager"]
        assert diagnostics == []

    def test_management_services_recorded(self):
        device, _ = parse_arista_config(self.CONFIG)
        assert any("gnmi" in s for s in device.management_services)

    def test_mpls_enabled(self):
        device, _ = parse_arista_config(self.CONFIG)
        assert device.mpls.enabled and device.mpls.traffic_eng

    def test_operator_typo_rejected_like_real_cli(self):
        """The E5 scenario: IOS syntax on an Arista box."""
        _, diagnostics = parse_arista_config(
            "interface Ethernet1\n   ip router isis\n"
        )
        assert len(diagnostics) == 1
        assert "Invalid input" in diagnostics[0].message


class TestRouteMapParsing:
    CONFIG = """\
ip prefix-list LOOPS seq 10 permit 2.2.0.0/16 le 32
route-map POLICY permit 10
   match ip address prefix-list LOOPS
   set local-preference 250
   set metric 5
   set community 65000:1 65000:2
route-map POLICY deny 20
"""

    def test_prefix_list(self):
        device, _ = parse_arista_config(self.CONFIG)
        plist = device.prefix_lists["LOOPS"]
        assert plist.permits(Prefix.parse("2.2.2.1/32"))

    def test_route_map_clauses(self):
        device, diagnostics = parse_arista_config(self.CONFIG)
        assert diagnostics == []
        clauses = device.route_maps["POLICY"].clauses
        assert [c.seq for c in clauses] == [10, 20]
        assert clauses[0].set_local_pref == 250
        assert len(clauses[0].set_communities) == 2
        assert not clauses[1].permit


class TestCli:
    @pytest.fixture(scope="class")
    def net(self):
        configs = {
            "r1": isis_config("r1", 1, "2.2.2.1", [("Ethernet1", "10.0.0.0/31")]),
            "r2": isis_config("r2", 2, "2.2.2.2", [("Ethernet1", "10.0.0.1/31")]),
        }
        net = mini_net(configs, [("r1", "Ethernet1", "r2", "Ethernet1")])
        net.converge()
        return net

    def test_show_ip_route(self, net):
        out = net.router("r1").cli("show ip route")
        assert "2.2.2.2/32" in out
        assert "I L2" in out

    def test_show_ip_route_filtered(self, net):
        out = net.router("r1").cli("show ip route 2.2.2.2")
        assert "2.2.2.2/32" in out
        assert "10.0.0.0/31" not in out

    def test_show_isis_neighbors(self, net):
        out = net.router("r1").cli("show isis neighbors")
        assert "0000.0000.0002" in out and "UP" in out

    def test_show_isis_database(self, net):
        out = net.router("r1").cli("show isis database")
        assert "0000.0000.0001.00-00" in out
        assert "0000.0000.0002.00-00" in out

    def test_show_ip_interface_brief(self, net):
        out = net.router("r1").cli("show ip interface brief")
        assert "Ethernet1" in out and "10.0.0.0/31" in out

    def test_show_running_config(self, net):
        out = net.router("r1").cli("show running-config")
        assert "router isis default" in out

    def test_show_version(self, net):
        assert "Arista" in net.router("r1").cli("show version")

    def test_invalid_command(self, net):
        assert "Invalid input" in net.router("r1").cli("show fish")

    def test_bgp_not_running(self, net):
        assert "not running" in net.router("r1").cli("show ip bgp summary")
