"""Tests for repro.net.addr."""

import pytest

from repro.net.addr import (
    AddressError,
    IPv4Address,
    MAX_IPV4,
    Prefix,
    format_ipv4,
    parse_ipv4,
    prefix_mask,
)


class TestParseFormat:
    def test_roundtrip_simple(self):
        assert format_ipv4(parse_ipv4("10.0.0.1")) == "10.0.0.1"

    def test_zero(self):
        assert parse_ipv4("0.0.0.0") == 0

    def test_max(self):
        assert parse_ipv4("255.255.255.255") == MAX_IPV4

    def test_whitespace_tolerated(self):
        assert parse_ipv4("  192.168.1.1 ") == 0xC0A80101

    @pytest.mark.parametrize(
        "bad", ["256.0.0.1", "1.2.3", "1.2.3.4.5", "a.b.c.d", "", "1..2.3"]
    )
    def test_malformed_raises(self, bad):
        with pytest.raises(AddressError):
            parse_ipv4(bad)

    def test_format_out_of_range(self):
        with pytest.raises(AddressError):
            format_ipv4(MAX_IPV4 + 1)
        with pytest.raises(AddressError):
            format_ipv4(-1)


class TestPrefixMask:
    def test_full(self):
        assert prefix_mask(32) == MAX_IPV4

    def test_zero(self):
        assert prefix_mask(0) == 0

    def test_slash24(self):
        assert prefix_mask(24) == 0xFFFFFF00

    def test_out_of_range(self):
        with pytest.raises(AddressError):
            prefix_mask(33)


class TestIPv4Address:
    def test_parse_and_str(self):
        addr = IPv4Address.parse("1.2.3.4")
        assert str(addr) == "1.2.3.4"
        assert int(addr) == 0x01020304

    def test_ordering(self):
        assert IPv4Address.parse("1.0.0.1") < IPv4Address.parse("2.0.0.0")

    def test_invalid_value(self):
        with pytest.raises(AddressError):
            IPv4Address(-5)


class TestPrefix:
    def test_parse_with_length(self):
        prefix = Prefix.parse("10.0.0.0/8")
        assert prefix.length == 8
        assert str(prefix) == "10.0.0.0/8"

    def test_parse_bare_address_is_host_route(self):
        assert Prefix.parse("1.2.3.4").length == 32

    def test_host_bits_rejected(self):
        with pytest.raises(AddressError):
            Prefix.parse("10.0.0.1/24")

    def test_containing_canonicalizes(self):
        prefix = Prefix.containing(parse_ipv4("10.1.2.3"), 24)
        assert str(prefix) == "10.1.2.0/24"

    def test_first_last(self):
        prefix = Prefix.parse("192.168.1.0/24")
        assert format_ipv4(prefix.first) == "192.168.1.0"
        assert format_ipv4(prefix.last) == "192.168.1.255"

    def test_num_addresses(self):
        assert Prefix.parse("10.0.0.0/31").num_addresses == 2
        assert Prefix.parse("10.0.0.0/32").num_addresses == 1
        assert Prefix.parse("0.0.0.0/0").num_addresses == 2**32

    def test_contains(self):
        prefix = Prefix.parse("10.0.0.0/8")
        assert prefix.contains(parse_ipv4("10.200.1.1"))
        assert not prefix.contains(parse_ipv4("11.0.0.0"))

    def test_contains_prefix(self):
        outer = Prefix.parse("10.0.0.0/8")
        inner = Prefix.parse("10.5.0.0/16")
        assert outer.contains_prefix(inner)
        assert not inner.contains_prefix(outer)
        assert outer.contains_prefix(outer)

    def test_overlaps(self):
        a = Prefix.parse("10.0.0.0/8")
        b = Prefix.parse("10.1.0.0/16")
        c = Prefix.parse("11.0.0.0/8")
        assert a.overlaps(b) and b.overlaps(a)
        assert not a.overlaps(c)

    def test_subnets(self):
        low, high = Prefix.parse("10.0.0.0/8").subnets()
        assert str(low) == "10.0.0.0/9"
        assert str(high) == "10.128.0.0/9"

    def test_subnets_of_host_route_fails(self):
        with pytest.raises(AddressError):
            Prefix.parse("1.1.1.1/32").subnets()

    def test_supernet(self):
        assert str(Prefix.parse("10.128.0.0/9").supernet()) == "10.0.0.0/8"

    def test_supernet_of_default_fails(self):
        with pytest.raises(AddressError):
            Prefix.parse("0.0.0.0/0").supernet()

    def test_hosts_regular_subnet_excludes_network_broadcast(self):
        hosts = Prefix.parse("10.0.0.0/30").hosts()
        assert list(hosts) == [parse_ipv4("10.0.0.1"), parse_ipv4("10.0.0.2")]

    def test_hosts_point_to_point_all_usable(self):
        hosts = list(Prefix.parse("10.0.0.0/31").hosts())
        assert len(hosts) == 2

    def test_ordering_is_total(self):
        prefixes = [
            Prefix.parse("10.0.0.0/8"),
            Prefix.parse("10.0.0.0/16"),
            Prefix.parse("9.0.0.0/8"),
        ]
        ordered = sorted(prefixes)
        assert ordered[0].network == parse_ipv4("9.0.0.0")

    def test_hashable(self):
        assert len({Prefix.parse("10.0.0.0/8"), Prefix.parse("10.0.0.0/8")}) == 1
