"""Dataplane model and symbolic forwarding tests.

Uses hand-built AFT snapshots for precise control over forwarding state
(loops, blackholes, ECMP) — the verification stage only ever sees AFTs,
so tests can construct any network state directly.
"""

import pytest

from repro.dataplane.forwarding import Disposition, ForwardingWalk, dst_atoms
from repro.dataplane.model import Dataplane
from repro.gnmi.aft import (
    AftInterface,
    AftIpv4Entry,
    AftNextHop,
    AftNextHopGroup,
    AftSnapshot,
)
from repro.net.addr import parse_ipv4


def snapshot(device, interfaces, forwards, receives=(), discards=()):
    """Build an AftSnapshot: interfaces as (name, 'a.b.c.d/len'),
    forwards as (prefix, [(iface, gateway_or_None), ...])."""
    snap = AftSnapshot(device=device)
    for name, cidr in interfaces:
        address, _, length = cidr.partition("/")
        snap.interfaces.append(
            AftInterface(
                name=name,
                ipv4_address=address,
                prefix_length=int(length),
                enabled=True,
            )
        )
    nh_index = 0
    for group_id, (prefix, hops) in enumerate(forwards, start=1):
        indices = []
        for iface, gateway in hops:
            nh_index += 1
            snap.next_hops[nh_index] = AftNextHop(
                index=nh_index, interface=iface, ip_address=gateway
            )
            indices.append(nh_index)
        snap.next_hop_groups[group_id] = AftNextHopGroup(
            group_id=group_id, next_hop_indices=tuple(indices)
        )
        snap.entries.append(
            AftIpv4Entry(
                prefix=prefix, entry_type="forward", next_hop_group=group_id
            )
        )
    for prefix in receives:
        snap.entries.append(AftIpv4Entry(prefix=prefix, entry_type="receive"))
    for prefix in discards:
        snap.entries.append(AftIpv4Entry(prefix=prefix, entry_type="discard"))
    return snap


@pytest.fixture
def line_dataplane():
    """a -- b with loopbacks 1.1.1.1 and 2.2.2.2."""
    a = snapshot(
        "a",
        [("eth0", "10.0.0.0/31"), ("lo", "1.1.1.1/32")],
        [
            ("2.2.2.2/32", [("eth0", "10.0.0.1")]),
            ("10.0.0.0/31", [("eth0", None)]),
        ],
        receives=["1.1.1.1/32", "10.0.0.0/32"],
    )
    b = snapshot(
        "b",
        [("eth0", "10.0.0.1/31"), ("lo", "2.2.2.2/32")],
        [
            ("1.1.1.1/32", [("eth0", "10.0.0.0")]),
            ("10.0.0.0/31", [("eth0", None)]),
        ],
        receives=["2.2.2.2/32", "10.0.0.1/32"],
    )
    return Dataplane.from_afts({"a": a, "b": b})


class TestEdgeDerivation:
    def test_shared_subnet_forms_edge(self, line_dataplane):
        assert len(line_dataplane.edges) == 1
        edge = line_dataplane.edges[0]
        assert {edge.device, edge.peer_device} == {"a", "b"}

    def test_adjacency_lookup(self, line_dataplane):
        neighbors = line_dataplane.adjacency[("a", "eth0")]
        assert neighbors == [("b", "eth0", parse_ipv4("10.0.0.1"))]

    def test_no_edge_without_shared_subnet(self):
        a = snapshot("a", [("eth0", "10.0.0.0/31")], [])
        b = snapshot("b", [("eth0", "10.0.9.1/31")], [])
        dataplane = Dataplane.from_afts({"a": a, "b": b})
        assert dataplane.edges == []

    def test_disabled_interface_no_edge(self):
        a = snapshot("a", [("eth0", "10.0.0.0/31")], [])
        b = snapshot("b", [], [])
        b.interfaces.append(
            AftInterface(
                name="eth0", ipv4_address="10.0.0.1", prefix_length=31,
                enabled=False,
            )
        )
        dataplane = Dataplane.from_afts({"a": a, "b": b})
        assert dataplane.edges == []

    def test_address_owner_map(self, line_dataplane):
        assert line_dataplane.address_owner[parse_ipv4("2.2.2.2")] == "b"


class TestWalk:
    def test_accepted_at_remote_loopback(self, line_dataplane):
        walk = ForwardingWalk(line_dataplane)
        result = walk.walk("a", parse_ipv4("2.2.2.2"))
        assert result.dispositions == {Disposition.ACCEPTED}
        assert [h.device for h in result.traces[0].hops] == ["a", "b"]

    def test_no_route(self, line_dataplane):
        walk = ForwardingWalk(line_dataplane)
        result = walk.walk("a", parse_ipv4("99.99.99.99"))
        assert result.dispositions == {Disposition.NO_ROUTE}

    def test_delivered_to_subnet_for_unowned_host(self, line_dataplane):
        walk = ForwardingWalk(line_dataplane)
        # 10.0.0.0/31 only has .0 and .1, both owned; use a /24-ish case:
        a = snapshot(
            "a",
            [("eth0", "192.168.1.1/24")],
            [("192.168.1.0/24", [("eth0", None)])],
            receives=["192.168.1.1/32"],
        )
        dataplane = Dataplane.from_afts({"a": a})
        result = ForwardingWalk(dataplane).walk("a", parse_ipv4("192.168.1.77"))
        assert result.dispositions == {Disposition.DELIVERED_TO_SUBNET}

    def test_null_route(self):
        a = snapshot("a", [("eth0", "10.0.0.0/31")], [],
                     discards=["192.0.2.0/24"])
        dataplane = Dataplane.from_afts({"a": a})
        result = ForwardingWalk(dataplane).walk("a", parse_ipv4("192.0.2.5"))
        assert result.dispositions == {Disposition.NULL_ROUTED}

    def test_loop_detected(self):
        a = snapshot(
            "a",
            [("eth0", "10.0.0.0/31")],
            [("5.5.5.5/32", [("eth0", "10.0.0.1")])],
        )
        b = snapshot(
            "b",
            [("eth0", "10.0.0.1/31")],
            [("5.5.5.5/32", [("eth0", "10.0.0.0")])],
        )
        dataplane = Dataplane.from_afts({"a": a, "b": b})
        result = ForwardingWalk(dataplane).walk("a", parse_ipv4("5.5.5.5"))
        assert result.dispositions == {Disposition.LOOP}

    def test_ecmp_branches_both_explored(self):
        core = snapshot(
            "core",
            [("eth0", "10.0.0.0/31"), ("eth1", "10.0.1.0/31")],
            [
                (
                    "5.5.5.5/32",
                    [("eth0", "10.0.0.1"), ("eth1", "10.0.1.1")],
                )
            ],
        )
        left = snapshot(
            "left", [("eth0", "10.0.0.1/31")], [], receives=["5.5.5.5/32"]
        )
        right = snapshot(
            "right", [("eth0", "10.0.1.1/31")], [],
            discards=["5.5.5.5/32"],
        )
        dataplane = Dataplane.from_afts(
            {"core": core, "left": left, "right": right}
        )
        result = ForwardingWalk(dataplane).walk("core", parse_ipv4("5.5.5.5"))
        assert result.dispositions == {
            Disposition.ACCEPTED,
            Disposition.NULL_ROUTED,
        }
        assert not result.success

    def test_exits_network_on_unwired_gateway(self):
        a = snapshot(
            "a",
            [("eth0", "10.0.0.0/31")],
            [("5.5.5.5/32", [("eth0", "10.0.0.1")])],
        )
        dataplane = Dataplane.from_afts({"a": a})
        result = ForwardingWalk(dataplane).walk("a", parse_ipv4("5.5.5.5"))
        assert result.dispositions == {Disposition.EXITS_NETWORK}


class TestAtoms:
    def test_atoms_cover_universe(self, line_dataplane):
        atoms = dst_atoms(line_dataplane)
        total = 0
        for atom in atoms:
            total += len(atom)
        assert total == 2**32

    def test_lpm_constant_within_atom(self, line_dataplane):
        walk = ForwardingWalk(line_dataplane)
        for atom in dst_atoms(line_dataplane):
            samples = [atom.min(), atom.max()]
            outcomes = {
                walk.walk("a", sample).dispositions for sample in samples
            }
            assert len(outcomes) == 1
