"""ACL tests: algebra, parsing, extraction, and exact verification."""

import pytest

from repro.device.acl import Acl, AclRule
from repro.dataplane.forwarding import Disposition, ForwardingWalk
from repro.net.addr import Prefix, parse_ipv4
from repro.net.headerspace import Field, HeaderSpace, Packet
from repro.net.intervals import IntervalSet
from repro.vendors.arista.config_parser import parse_arista_config

from tests.helpers import isis_config, mini_net


def rule(seq, permit, **kwargs):
    return AclRule(seq=seq, permit=permit, **kwargs)


class TestAclAlgebra:
    def test_implicit_deny(self):
        acl = Acl("EMPTY")
        assert acl.permit_space().is_empty()
        assert not acl.permits_packet(Packet(dst_ip=0))

    def test_permit_any(self):
        acl = Acl("ALL")
        acl.add(rule(10, True))
        assert acl.permit_space().equivalent(HeaderSpace.full())

    def test_first_match_deny_shadows_permit(self):
        acl = Acl("A")
        acl.add(rule(10, False, src=Prefix.parse("10.0.0.0/8")))
        acl.add(rule(20, True))
        space = acl.permit_space()
        assert not space.contains_packet(
            Packet(dst_ip=0, src_ip=parse_ipv4("10.1.1.1"))
        )
        assert space.contains_packet(
            Packet(dst_ip=0, src_ip=parse_ipv4("11.0.0.1"))
        )

    def test_protocol_and_port_match(self):
        acl = Acl("WEB")
        acl.add(rule(10, True, protocol=6, dst_port=(80, 80)))
        space = acl.permit_space()
        assert space.contains_packet(Packet(dst_ip=0, ip_proto=6, dst_port=80))
        assert not space.contains_packet(
            Packet(dst_ip=0, ip_proto=17, dst_port=80)
        )
        assert not space.contains_packet(
            Packet(dst_ip=0, ip_proto=6, dst_port=81)
        )

    def test_permits_packet_matches_space(self):
        acl = Acl("MIX")
        acl.add(rule(10, False, protocol=6, dst_port=(22, 22)))
        acl.add(rule(20, True, src=Prefix.parse("192.168.0.0/16")))
        for packet in (
            Packet(dst_ip=1, src_ip=parse_ipv4("192.168.1.1"), ip_proto=6,
                   dst_port=22),
            Packet(dst_ip=1, src_ip=parse_ipv4("192.168.1.1"), dst_port=443),
            Packet(dst_ip=1, src_ip=parse_ipv4("8.8.8.8")),
        ):
            assert acl.permits_packet(packet) == acl.permit_space(
            ).contains_packet(packet)


class TestAclParsing:
    CONFIG = """\
ip access-list EDGE-IN
   10 deny tcp any any eq 22
   20 permit ip 10.0.0.0/8 any
   30 deny udp host 192.0.2.1 10.0.0.0/8 range 5000 6000
   permit ip any any
interface Ethernet1
   no switchport
   ip address 10.0.0.1/31
   ip access-group EDGE-IN in
"""

    def test_rules_parsed(self):
        device, diagnostics = parse_arista_config(self.CONFIG)
        assert diagnostics == []
        acl = device.acls["EDGE-IN"]
        assert [r.seq for r in acl.rules] == [10, 20, 30, 40]
        assert acl.rules[0].protocol == 6
        assert acl.rules[0].dst_port == (22, 22)
        assert acl.rules[2].src == Prefix.parse("192.0.2.1/32")
        assert acl.rules[2].dst_port == (5000, 6000)

    def test_binding_parsed(self):
        device, _ = parse_arista_config(self.CONFIG)
        assert device.interfaces["Ethernet1"].acl_in == "EDGE-IN"

    def test_bad_rule_diagnosed(self):
        _, diagnostics = parse_arista_config(
            "ip access-list X\n   10 permit banana any any\n"
        )
        assert diagnostics


def acl_net():
    """r1 -- r2; r2's inbound ACL drops SSH and one /16 of sources."""
    r1 = isis_config("r1", 1, "2.2.2.1", [("Ethernet1", "10.0.0.0/31")])
    r2 = isis_config("r2", 2, "2.2.2.2", [("Ethernet1", "10.0.0.1/31)")])
    # isis_config can't express ACLs; write r2 explicitly.
    r2 = """\
hostname r2
ip routing
router isis default
   net 49.0001.0000.0000.0002.00
   address-family ipv4 unicast
ip access-list PROTECT
   10 deny tcp any any eq 22
   20 deny ip 172.16.0.0/16 any
   30 permit ip any any
interface Loopback0
   ip address 2.2.2.2/32
   isis enable default
   isis passive
interface Ethernet1
   no switchport
   ip address 10.0.0.1/31
   isis enable default
   ip access-group PROTECT in
"""
    net = mini_net(
        {"r1": r1, "r2": r2}, [("r1", "Ethernet1", "r2", "Ethernet1")]
    )
    net.converge()
    return net


class TestAclEndToEnd:
    @pytest.fixture(scope="class")
    def dataplane(self):
        from repro.gnmi.server import dump_afts
        from repro.dataplane.model import Dataplane

        net = acl_net()
        return Dataplane.from_afts(dump_afts(net))

    def test_acl_survives_gnmi_extraction(self, dataplane):
        device = dataplane.devices["r2"]
        assert "PROTECT" in device.acls
        assert device.ingress_acl("Ethernet1") is not None

    def test_acl_roundtrips_through_json(self):
        import json
        from repro.gnmi.aft import AftSnapshot
        from repro.gnmi.server import dump_afts

        net = acl_net()
        snapshot = dump_afts(net)["r2"]
        restored = AftSnapshot.from_dict(
            json.loads(json.dumps(snapshot.to_dict()))
        )
        assert restored.acls == snapshot.acls
        bindings = {i.name: i.acl_in for i in restored.interfaces}
        assert bindings["Ethernet1"] == "PROTECT"

    def test_walk_splits_traffic_exactly(self, dataplane):
        walk = ForwardingWalk(dataplane)
        result = walk.walk("r1", parse_ipv4("2.2.2.2"))
        assert result.dispositions == {
            Disposition.ACCEPTED,
            Disposition.DENIED_IN,
        }
        spaces = result.spaces_by_disposition()
        denied = spaces[Disposition.DENIED_IN]
        accepted = spaces[Disposition.ACCEPTED]
        # SSH is denied; HTTP from a clean source is accepted.
        ssh = Packet(dst_ip=parse_ipv4("2.2.2.2"), ip_proto=6, dst_port=22)
        http = Packet(dst_ip=parse_ipv4("2.2.2.2"), ip_proto=6, dst_port=80,
                      src_ip=parse_ipv4("8.8.8.8"))
        bad_src = Packet(dst_ip=parse_ipv4("2.2.2.2"),
                         src_ip=parse_ipv4("172.16.5.5"), dst_port=80)
        assert denied.contains_packet(ssh)
        assert accepted.contains_packet(http)
        assert denied.contains_packet(bad_src)
        assert not accepted.contains_packet(ssh)
        # The split is a partition of the queried space (all traffic to
        # the queried destination address).
        assert (denied & accepted).is_empty()
        queried = HeaderSpace.dst_set(
            IntervalSet.of(parse_ipv4("2.2.2.2"))
        )
        assert (denied | accepted).equivalent(queried)

    def test_denied_trace_ends_at_the_acl_device(self, dataplane):
        walk = ForwardingWalk(dataplane)
        result = walk.walk("r1", parse_ipv4("2.2.2.2"))
        denied_trace = next(
            t for t in result.traces if t.disposition is Disposition.DENIED_IN
        )
        assert denied_trace.hops[-1].device == "r2"
        packet = denied_trace.sample_packet()
        assert packet is not None

    def test_differential_detects_acl_introduction(self):
        """Exactness check: the no-ACL and ACL dataplanes differ only in
        the denied slices, and the differential engine reports it even
        though the disposition *sets* at coarse dst granularity also
        change."""
        from repro.gnmi.server import dump_afts
        from repro.dataplane.model import Dataplane
        from repro.verify.differential import differential_reachability

        with_acl = Dataplane.from_afts(dump_afts(acl_net()))
        open_r2 = """\
hostname r2
ip routing
router isis default
   net 49.0001.0000.0000.0002.00
   address-family ipv4 unicast
interface Loopback0
   ip address 2.2.2.2/32
   isis enable default
   isis passive
interface Ethernet1
   no switchport
   ip address 10.0.0.1/31
   isis enable default
"""
        r1 = isis_config("r1", 1, "2.2.2.1", [("Ethernet1", "10.0.0.0/31")])
        net = mini_net(
            {"r1": r1, "r2": open_r2},
            [("r1", "Ethernet1", "r2", "Ethernet1")],
        )
        net.converge()
        without_acl = Dataplane.from_afts(dump_afts(net))
        rows = differential_reachability(without_acl, with_acl)
        regressions = [r for r in rows if r.regressed]
        assert regressions
        assert any(
            Disposition.DENIED_IN in r.snapshot_dispositions
            for r in regressions
        )

    def test_egress_acl(self):
        """An outbound ACL on r1's uplink drops traffic before the wire."""
        r1 = """\
hostname r1
ip routing
router isis default
   net 49.0001.0000.0000.0001.00
   address-family ipv4 unicast
ip access-list NO-TELNET
   10 deny tcp any any eq 23
   20 permit ip any any
interface Loopback0
   ip address 2.2.2.1/32
   isis enable default
   isis passive
interface Ethernet1
   no switchport
   ip address 10.0.0.0/31
   isis enable default
   ip access-group NO-TELNET out
"""
        r2 = isis_config("r2", 2, "2.2.2.2", [("Ethernet1", "10.0.0.1/31")])
        net = mini_net(
            {"r1": r1, "r2": r2}, [("r1", "Ethernet1", "r2", "Ethernet1")]
        )
        net.converge()
        from repro.gnmi.server import dump_afts
        from repro.dataplane.model import Dataplane

        dataplane = Dataplane.from_afts(dump_afts(net))
        result = ForwardingWalk(dataplane).walk("r1", parse_ipv4("2.2.2.2"))
        spaces = result.spaces_by_disposition()
        telnet = Packet(dst_ip=parse_ipv4("2.2.2.2"), ip_proto=6, dst_port=23)
        assert spaces[Disposition.DENIED_OUT].contains_packet(telnet)
        assert not spaces[Disposition.ACCEPTED].contains_packet(telnet)


class TestFilterQuestions:
    @pytest.fixture(scope="class")
    def session(self):
        from repro.core.snapshot import Snapshot
        from repro.gnmi.server import dump_afts
        from repro.pybf.session import Session

        net = acl_net()
        snapshot = Snapshot(name="acl", afts=dump_afts(net))
        bf = Session()
        bf.init_snapshot(snapshot, name="acl")
        return bf

    def test_search_filters_permit(self, session):
        answer = session.q.searchFilters(
            nodes="r2", filters="PROTECT", action="permit"
        ).answer()
        rows = answer.frame().rows
        assert len(rows) == 1
        assert rows[0]["Action"] == "PERMIT"
        assert rows[0]["Flow"]

    def test_search_filters_deny(self, session):
        answer = session.q.searchFilters(
            nodes="r2", action="deny"
        ).answer()
        assert len(answer) == 1

    def test_no_unreachable_lines_in_clean_acl(self, session):
        answer = session.q.filterLineReachability(nodes="r2").answer()
        assert len(answer) == 0

    def test_shadowed_rule_detected(self):
        from repro.core.snapshot import Snapshot
        from repro.gnmi.server import dump_afts
        from repro.pybf.session import Session

        r1 = isis_config("r1", 1, "2.2.2.1", [("Ethernet1", "10.0.0.0/31")])
        shadowed_r2 = """\
hostname r2
ip routing
ip access-list SLOPPY
   10 permit ip 10.0.0.0/8 any
   20 deny tcp 10.1.0.0/16 any eq 22
   30 permit ip any any
interface Ethernet1
   no switchport
   ip address 10.0.0.1/31
   ip access-group SLOPPY in
"""
        net = mini_net(
            {"r1": r1, "r2": shadowed_r2},
            [("r1", "Ethernet1", "r2", "Ethernet1")],
        )
        net.converge()
        bf = Session()
        bf.init_snapshot(
            Snapshot(name="s", afts=dump_afts(net)), name="s"
        )
        answer = bf.q.filterLineReachability().answer()
        rows = answer.frame().rows
        # Rule 20 is fully shadowed by rule 10 (10.1/16 ⊂ 10/8).
        assert len(rows) == 1
        assert rows[0]["Sequence"] == 20
        assert "deny tcp" in rows[0]["Unreachable_Line"]


class TestAclProperties:
    def test_permit_space_equals_first_match_on_random_packets(self):
        from hypothesis import given, settings, strategies as st
        from repro.net.addr import MAX_IPV4

        @st.composite
        def rules(draw):
            kwargs = {}
            if draw(st.booleans()):
                kwargs["protocol"] = draw(st.sampled_from([1, 6, 17]))
            if draw(st.booleans()):
                length = draw(st.integers(0, 32))
                kwargs["src"] = Prefix.containing(
                    draw(st.integers(0, MAX_IPV4)), length
                )
            if draw(st.booleans()):
                lo = draw(st.integers(0, 65535))
                hi = draw(st.integers(lo, 65535))
                kwargs["dst_port"] = (lo, hi)
            return AclRule(
                seq=draw(st.integers(1, 1000)),
                permit=draw(st.booleans()),
                **kwargs,
            )

        @settings(max_examples=60, deadline=None)
        @given(
            st.lists(rules(), max_size=6),
            st.integers(0, MAX_IPV4),
            st.sampled_from([1, 6, 17, 89]),
            st.integers(0, 65535),
        )
        def check(rule_list, src_ip, proto, dst_port):
            acl = Acl("P")
            seen = set()
            for r in rule_list:
                if r.seq not in seen:
                    seen.add(r.seq)
                    acl.add(r)
            packet = Packet(
                dst_ip=0, src_ip=src_ip, ip_proto=proto, dst_port=dst_port
            )
            assert acl.permits_packet(packet) == acl.permit_space(
            ).contains_packet(packet)

        check()
