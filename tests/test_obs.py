"""Tests for the observability subsystem (repro.obs)."""

import pytest

from repro.core.context import ScenarioContext
from repro.core.pipeline import ModelFreeBackend, NativeBatfishBackend
from repro.corpus.fig2 import fig2_scenario
from repro.obs import (
    NULL,
    ConvergenceTimeline,
    Tracer,
    bus,
    read_jsonl,
    summary_text,
    tracing,
    write_jsonl,
)
from repro.protocols.timers import FAST_TIMERS
from repro.sim.kernel import SimKernel


class TestBus:
    def test_default_collector_is_disabled(self):
        assert bus.active() is NULL
        assert not bus.active().enabled

    def test_null_collector_methods_are_noops(self):
        NULL.emit("x", 1.0, node="r1", a=1)
        NULL.count("x")
        span = NULL.begin("p", 0.0)
        NULL.end(span, 1.0)  # must not raise

    def test_tracing_installs_and_restores(self):
        assert bus.active() is NULL
        with tracing() as tracer:
            assert bus.active() is tracer
            assert tracer.enabled
        assert bus.active() is NULL

    def test_tracing_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with tracing():
                raise RuntimeError("boom")
        assert bus.active() is NULL

    def test_emit_and_count(self):
        tracer = Tracer()
        tracer.emit("cat", 1.5, node="r1", detail_key=7)
        tracer.count("hits")
        tracer.count("hits", 2)
        assert tracer.events[0].t == 1.5
        assert tracer.events[0].detail == {"detail_key": 7}
        assert tracer.counters == {"hits": 3}

    def test_phase_spans_nest(self):
        tracer = Tracer()
        outer = tracer.begin("outer", 0.0)
        inner = tracer.begin("inner", 1.0)
        assert inner.parent == "outer"
        tracer.end(inner, 2.0)
        tracer.end(outer, 3.0)
        assert outer.parent is None
        assert inner.sim_seconds == 1.0
        assert outer.sim_seconds == 3.0

    def test_non_phase_spans_do_not_stack(self):
        tracer = Tracer()
        deploy = tracer.begin("deploy", 0.0)
        boot_a = tracer.begin("boot:a", 1.0, category="kube.boot", node="a")
        boot_b = tracer.begin("boot:b", 1.5, category="kube.boot", node="b")
        # Concurrent boot spans both attach to the open phase, not to
        # each other.
        assert boot_a.parent == "deploy"
        assert boot_b.parent == "deploy"
        tracer.end(boot_b, 2.0)
        tracer.end(boot_a, 2.5)
        tracer.end(deploy, 3.0)
        assert [s.name for s in tracer.phase_spans()] == ["deploy"]


class TestKernelInstrumentation:
    def test_dispatch_counted_when_tracing(self):
        with tracing() as tracer:
            kernel = SimKernel()
            for _ in range(5):
                kernel.schedule(1.0, lambda: None, label="tick:x")
            kernel.run()
        assert tracer.counters["kernel.dispatch"] == 5
        assert tracer.counters["kernel.dispatch.tick"] == 5

    def test_disabled_collector_records_nothing(self):
        kernel = SimKernel()
        for _ in range(5):
            kernel.schedule(1.0, lambda: None)
        kernel.run()
        # Nothing leaked into the module-level collector.
        assert bus.active() is NULL


@pytest.fixture(scope="module")
def fig2_traced():
    scenario = fig2_scenario()
    with tracing() as tracer:
        backend = ModelFreeBackend(
            scenario.topology, timers=FAST_TIMERS, quiet_period=5.0
        )
        snapshot = backend.run(snapshot_name="traced")
    return tracer, snapshot


class TestPipelineTrace:
    def test_phase_spans_recorded(self, fig2_traced):
        tracer, _snapshot = fig2_traced
        names = [s.name for s in tracer.phase_spans()]
        assert names == ["deploy", "inject", "converge", "extract"]

    def test_snapshot_metadata_phases(self, fig2_traced):
        tracer, snapshot = fig2_traced
        phases = snapshot.metadata["phases"]
        assert set(phases) == {"deploy", "inject", "converge", "extract"}
        deploy_span = next(
            s for s in tracer.phase_spans() if s.name == "deploy"
        )
        # Metadata durations match the recorded spans.
        assert phases["deploy"]["sim_seconds"] == pytest.approx(
            deploy_span.sim_seconds
        )
        assert phases["deploy"]["sim_seconds"] == pytest.approx(
            snapshot.startup_seconds
        )

    def test_untraced_run_still_has_phases(self):
        scenario = fig2_scenario()
        snapshot = ModelFreeBackend(
            scenario.topology, timers=FAST_TIMERS, quiet_period=5.0
        ).run()
        assert snapshot.metadata["phases"]["deploy"]["sim_seconds"] > 0
        assert bus.active() is NULL

    def test_boot_span_per_pod(self, fig2_traced):
        tracer, _snapshot = fig2_traced
        boots = [s for s in tracer.spans if s.category == "kube.boot"]
        assert {s.node for s in boots} == {f"r{i}" for i in range(1, 7)}
        assert all(s.closed and s.sim_seconds > 0 for s in boots)

    def test_scheduling_decisions_recorded(self, fig2_traced):
        tracer, _snapshot = fig2_traced
        scheduled = tracer.events_in("kube.pod.scheduled")
        assert {e.node for e in scheduled} == {f"r{i}" for i in range(1, 7)}
        assert all(e.detail["kube_node"] for e in scheduled)

    def test_protocol_events_and_counters(self, fig2_traced):
        tracer, _snapshot = fig2_traced
        assert tracer.events_in("isis.adjacency.up")
        assert tracer.events_in("bgp.session.up")
        assert tracer.events_in("route.install")
        assert tracer.counters["isis.lsp.sent"] > 0
        assert tracer.counters["bgp.update.sent"] > 0
        assert tracer.counters["kernel.dispatch"] > 100

    def test_aft_dump_events(self, fig2_traced):
        tracer, _snapshot = fig2_traced
        dumps = tracer.events_in("gnmi.aft.dump")
        assert {e.node for e in dumps} == {f"r{i}" for i in range(1, 7)}
        assert all(e.detail["entries"] > 0 for e in dumps)


class TestConvergenceTimeline:
    def test_per_device_milestones(self, fig2_traced):
        tracer, _snapshot = fig2_traced
        timeline = ConvergenceTimeline.from_tracer(tracer)
        assert set(timeline.devices) == {f"r{i}" for i in range(1, 7)}
        for device in timeline.devices.values():
            assert device.booted_at is not None
            assert device.last_adjacency_up is not None
            assert device.last_route_install is not None
            assert device.routes > 0
            # Causality: boot before adjacency before final route.
            assert device.booted_at <= device.last_adjacency_up
            assert device.last_adjacency_up <= device.last_route_install

    def test_phases_dict_shape(self, fig2_traced):
        tracer, _snapshot = fig2_traced
        phases = ConvergenceTimeline.from_tracer(tracer).phases_dict()
        assert phases["converge"]["sim_seconds"] > 0
        assert phases["extract"]["wall_seconds"] > 0

    def test_render_mentions_everything(self, fig2_traced):
        tracer, _snapshot = fig2_traced
        text = ConvergenceTimeline.from_tracer(tracer).render()
        assert "Phases:" in text
        assert "deploy" in text and "converge" in text
        assert "r1" in text and "r6" in text
        assert "kernel.dispatch" in text
        assert "Total events recorded" in text

    def test_summary_text(self, fig2_traced):
        tracer, _snapshot = fig2_traced
        text = summary_text(tracer)
        assert "Counters:" in text
        assert "Last route installed" in text
        # The profiling extensions: top-N slowest spans and per-name
        # wall-duration percentiles.
        assert "Slowest spans" in text
        assert "Span durations (wall ms):" in text
        assert "p99" in text

    def test_phase_histograms_on_tracer_registry(self, fig2_traced):
        tracer, _snapshot = fig2_traced
        kinds = {
            (r["kind"], r["name"]) for r in tracer.registry.collect()
        }
        assert ("histogram", "pipeline.phase_wall_seconds") in kinds
        assert ("histogram", "pipeline.phase_sim_seconds") in kinds
        wall = tracer.registry.histogram(
            "pipeline.phase_wall_seconds",
            "Wall seconds spent per pipeline phase",
            ("phase",),
        )
        assert wall.labels(phase="deploy").count == 1


class TestJsonlRoundTrip:
    def test_round_trip_preserves_report(self, fig2_traced, tmp_path):
        tracer, _snapshot = fig2_traced
        path = tmp_path / "trace.jsonl"
        lines = write_jsonl(tracer, path)
        # One line per event, per span, and per metric *series* (every
        # counter, gauge, and histogram child in the registry).
        assert lines == (
            len(tracer.events)
            + len(tracer.spans)
            + len(tracer.registry.collect())
        )
        restored = read_jsonl(path)
        original = ConvergenceTimeline.from_tracer(tracer)
        loaded = ConvergenceTimeline.from_tracer(restored)
        assert loaded.phases_dict() == original.phases_dict()
        assert loaded.counters == original.counters
        assert loaded.total_events == original.total_events
        assert set(loaded.devices) == set(original.devices)
        # The whole metrics plane survives, histograms included.
        assert restored.registry.collect() == tracer.registry.collect()

    def test_unknown_kind_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "mystery"}\n')
        with pytest.raises(ValueError, match="unknown trace record kind"):
            read_jsonl(path)


class TestLinkCutWarning:
    def test_model_backend_warns_on_unknown_link(self, caplog):
        scenario = fig2_scenario()
        context = ScenarioContext().with_link_down("r1", "nonexistent")
        with tracing() as tracer:
            with caplog.at_level("WARNING"):
                snapshot = NativeBatfishBackend(scenario.topology).run(context)
        warnings = tracer.events_in("pipeline.warning")
        assert len(warnings) == 1
        assert warnings[0].detail["reason"] == "unknown-link"
        assert warnings[0].detail["z_node"] == "nonexistent"
        assert "nonexistent" in caplog.text
        # The cut is ignored; the run still completes.
        assert snapshot.backend == "model"
        timeline = ConvergenceTimeline.from_tracer(tracer)
        assert timeline.warnings
        assert "unknown-link" in timeline.render()

    def test_valid_link_cut_does_not_warn(self):
        scenario = fig2_scenario()
        context = ScenarioContext().with_link_down("r1", "r2")
        with tracing() as tracer:
            NativeBatfishBackend(scenario.topology).run(context)
        assert tracer.events_in("pipeline.warning") == []


class TestSharedContextDefault:
    def test_run_default_contexts_are_independent(self):
        # Regression: the default ScenarioContext used to be a shared
        # mutable dataclass instance across all backend runs.
        scenario = fig2_scenario()
        backend = NativeBatfishBackend(scenario.topology)
        first = backend.run()
        second = backend.run()
        assert first.metadata["context"] == "base"
        assert second.metadata["context"] == "base"
        import inspect

        for cls in (ModelFreeBackend, NativeBatfishBackend):
            default = inspect.signature(cls.run).parameters["context"].default
            assert default is None

    def test_multirun_default_context_not_shared(self):
        # Same bug class in explore_nondeterminism: the default context
        # used to be one shared ScenarioContext instance.
        import inspect

        from repro.core.multirun import explore_nondeterminism

        default = inspect.signature(
            explore_nondeterminism
        ).parameters["context"].default
        assert default is None


class TestModelWarningClock:
    def test_model_warning_stamped_at_model_epoch(self):
        # The model backend has no simulated clock — its warnings are
        # stamped at MODEL_EPOCH and tagged backend="model" so timeline
        # readers know the timestamp is a placeholder.
        from repro.core.pipeline import MODEL_EPOCH

        scenario = fig2_scenario()
        context = ScenarioContext().with_link_down("r1", "nonexistent")
        with tracing() as tracer:
            NativeBatfishBackend(scenario.topology).run(context)
        [warning] = tracer.events_in("pipeline.warning")
        assert warning.t == MODEL_EPOCH
        assert warning.detail["backend"] == "model"
