#!/usr/bin/env python3
"""E5: the operator tooling flow — poke at the emulated control plane.

An IS-IS misconfiguration (IOS syntax on an Arista box) makes
verification report missing reachability. Instead of staring at a model
error, the operator SSHes into the emulated router and debugs it with
the exact commands used against production hardware.

Run:  python examples/operator_debugging.py
"""

from repro import ModelFreeBackend
from repro.protocols.timers import FAST_TIMERS
from repro.topo.builder import TopologyBuilder
from repro.verify.reachability import verify_pairwise_reachability_text


def banner(text: str) -> None:
    print()
    print("#" * 66)
    print("#", text)
    print("#" * 66)


R2 = """\
hostname r2
ip routing
router isis default
   net 49.0001.0000.0000.0002.00
   address-family ipv4 unicast
interface Loopback0
   ip address 2.2.2.2/32
   isis enable default
   isis passive
interface Ethernet1
   no switchport
   ip address 10.0.0.1/31
   isis enable default
"""

BROKEN_R1 = """\
hostname r1
ip routing
router isis default
   net 49.0001.0000.0000.0001.00
   address-family ipv4 unicast
interface Loopback0
   ip address 2.2.2.1/32
   isis enable default
   isis passive
interface Ethernet1
   no switchport
   ip address 10.0.0.0/31
   ip router isis
"""


def build(r1: str):
    builder = TopologyBuilder("debug-session")
    builder.node("r1", config=r1)
    builder.node("r2", config=R2)
    builder.link("r1", "r2", a_int="Ethernet1", z_int="Ethernet1")
    return builder.build()


def main() -> None:
    banner("1. Verify the candidate configuration")
    backend = ModelFreeBackend(
        build(BROKEN_R1), timers=FAST_TIMERS, quiet_period=5.0
    )
    snapshot = backend.run()
    print(verify_pairwise_reachability_text(snapshot.dataplane))

    banner("2. SSH into the emulated r1 and look around")
    ssh = backend.last_run.deployment.ssh("r1")
    for command in (
        "show isis neighbors",
        "show isis database",
        "show ip route",
        "show running-config diagnostics",
    ):
        print(f"r1# {command}")
        print(ssh.execute(command))

    banner("3. Diagnosis")
    print(
        "No IS-IS adjacency, the link prefix is missing from r1's own\n"
        "LSP, and the config diagnostics show the router rejected\n"
        "'ip router isis' — that is IOS syntax; EOS wants\n"
        "'isis enable default'."
    )

    banner("4. Fix and re-verify")
    fixed = BROKEN_R1.replace("ip router isis", "isis enable default")
    backend2 = ModelFreeBackend(
        build(fixed), timers=FAST_TIMERS, quiet_period=5.0
    )
    snapshot2 = backend2.run()
    print(verify_pairwise_reachability_text(snapshot2.dataplane))


if __name__ == "__main__":
    main()
