#!/usr/bin/env python3
"""Quickstart: verify a 3-router network, model-free.

Builds the paper's Fig. 3 scenario (a 3-node IS-IS line whose R1 uses a
configuration ordering that trips up model-based parsers), runs the full
model-free pipeline — emulate, converge, extract AFTs over gNMI — and
asks Pybatfish-style questions about the result. Then runs the same
configurations through the model-based baseline and diffs the two
backends, reproducing the paper's headline divergence.

Run:  python examples/quickstart.py
"""

from repro import ModelFreeBackend, NativeBatfishBackend, Session
from repro.corpus import fig3_scenario
from repro.obs import summary_text, tracing
from repro.protocols.timers import FAST_TIMERS


def main() -> None:
    scenario = fig3_scenario()
    print("Topology:", scenario.topology)
    print()

    # --- upper stage: control-plane emulation --------------------------
    backend = ModelFreeBackend(
        scenario.topology, timers=FAST_TIMERS, quiet_period=5.0
    )
    with tracing() as tracer:
        snapshot = backend.run(snapshot_name="emulated")
    print(
        f"Emulation: startup {snapshot.startup_seconds / 60:.1f} sim-min, "
        f"convergence {snapshot.convergence_seconds:.1f} sim-s, "
        f"{len(snapshot.afts)} AFTs extracted over gNMI"
    )
    print()
    print(summary_text(tracer, title="Observability summary"))
    print()

    # --- lower stage: Pybatfish-style verification ---------------------
    bf = Session()
    bf.init_snapshot(snapshot, name="emulated")

    print("== routes(nodes='r2') ==")
    print(bf.q.routes(nodes="r2").answer())
    print()

    print("== traceroute r3 -> 2.2.2.1 ==")
    print(bf.q.traceroute(startLocation="r3", dst="2.2.2.1").answer())
    print()

    # --- compare against the model-based baseline ----------------------
    model = NativeBatfishBackend(scenario.topology).run(snapshot_name="model")
    bf.init_snapshot(model, name="model")
    print("== differentialReachability(model vs emulated) ==")
    answer = bf.q.differentialReachability().answer(
        snapshot="model", reference_snapshot="emulated"
    )
    print(answer)
    print()
    print(
        "The model-derived dataplane drops traffic the real control "
        "plane forwards (Fig. 3, issues #1 and #2): that is the paper's "
        "case for model-free verification."
    )


if __name__ == "__main__":
    main()
