#!/usr/bin/env python3
"""What-if failure campaign on the production corpus (§6 the cheap way).

The paper's sell is asking "what happens under failure X" against the
*real* control plane — but a cold emulation per scenario pays the full
multi-minute bring-up every time. This example runs the exhaustive
single-link-failure sweep the warm way instead: one deployment, then
per link cut → incremental re-convergence → extract → verify against
the baseline → revert, with the campaign report ranking the most
damaging failures and comparing incremental against cold cost.

Run:  python examples/failure_campaign.py
"""

from repro.core.context import ScenarioContext
from repro.corpus.production import production_scenario, scaled_timers
from repro.whatif import WhatIfCampaign, single_link_failures

NODES = 8
ROUTES_PER_PEER = 200


def main() -> None:
    scenario = production_scenario(
        NODES, peers=2, routes_per_peer=ROUTES_PER_PEER, seed=7
    )
    topology = scenario.topology
    scenarios = list(single_link_failures(topology))
    print(
        f"Network: {NODES} routers (mixed vendors), "
        f"{len(topology.links)} links, "
        f"{len(scenario.injectors)} external route injectors"
    )
    print(f"Campaign: {len(scenarios)} single-link-failure scenarios")
    print()

    print("Deploying and converging the baseline once (warm deployment)...")
    campaign = WhatIfCampaign(
        topology,
        scenarios,
        context=ScenarioContext(
            name="prod", injectors=tuple(scenario.injectors)
        ),
        timers=scaled_timers(ROUTES_PER_PEER),
        quiet_period=30.0,
    )
    report = campaign.run()
    print()
    print(report.render())
    print()

    worst = report.ranked()[0]
    print(
        f"Most damaging failure: {worst.scenario} "
        f"(severity {worst.severity}, {worst.regressed} regressed flows)"
    )
    for sample in worst.sample_regressions:
        print(f"  e.g. {sample}")
    print(
        f"Every scenario re-converged incrementally in "
        f"{max(v.reconverge_seconds for v in report.verdicts):.1f} sim-s "
        f"or less, against a "
        f"{report.baseline_startup_seconds + report.baseline_convergence_seconds:.0f} "
        f"sim-s cold bring-up."
    )


if __name__ == "__main__":
    main()
