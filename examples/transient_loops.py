#!/usr/bin/env python3
"""Transient-state verification: catch what the converged snapshot hides.

A link flap on a converged network is the canonical blind spot of
snapshot verification: the network ends up exactly where it started, so
`mfv verify` on the final state reports a clean bill of health — yet
for the seconds the routes were moving, real traffic blackholed (or
looped). This example records a checkpoint stream of FIB deltas through
a flap, evaluates the temporal invariants at every checkpoint, and
prints the violation intervals side by side with the (empty) post-
convergence verdict.

Run:  python examples/transient_loops.py [nodes] [routes-per-peer]
"""

import sys

from repro import ModelFreeBackend, ScenarioContext
from repro.corpus import production_scenario
from repro.corpus.production import scaled_timers
from repro.temporal import CheckpointRecorder, evaluate_stream
from repro.verify.invariants import detect_blackholes, detect_loops
from repro.whatif import link_flap_scenarios


def main() -> None:
    nodes = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    routes = int(sys.argv[2]) if len(sys.argv) > 2 else 500

    scenario = production_scenario(
        nodes, peers=2, routes_per_peer=routes, seed=7
    )
    context = ScenarioContext(
        name="transient-loops", injectors=tuple(scenario.injectors)
    )
    backend = ModelFreeBackend(
        scenario.topology, timers=scaled_timers(routes), quiet_period=30.0
    )
    print(f"Converging a {nodes}-node replica with 2x{routes} injected routes...")
    backend.run(context)
    deployment = backend.last_run.deployment

    flap = next(
        iter(link_flap_scenarios(scenario.topology, hold_seconds=30.0))
    )
    print(f"Recording checkpoints through {flap.name!r} (30 sim-s down)...")
    recorder = CheckpointRecorder(deployment)
    recorder.arm()
    flap.apply(deployment)
    deployment.wait_converged(
        quiet_period=max(30.0, flap.min_quiet_period)
    )
    stream = recorder.finalize()

    report = evaluate_stream(stream)
    print()
    print(report.render())

    final = stream.final.dataplane
    print()
    print(
        "Post-convergence verify on the final state: "
        f"{len(detect_loops(final))} loop(s), "
        f"{len(detect_blackholes(final))} blackhole(s)"
    )
    transient = report.transient
    if transient:
        worst = max(transient, key=lambda i: i.duration)
        print(
            f"The snapshot check is blind to all {len(transient)} transient "
            f"interval(s) above — the worst lasted {worst.duration:.1f} "
            f"simulated seconds ({worst.ingress}->{worst.destination})."
        )


if __name__ == "__main__":
    main()
