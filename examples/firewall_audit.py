#!/usr/bin/env python3
"""Exact ACL verification over an extracted dataplane.

A small edge network protects an internal service with an inbound ACL.
The verification engine carries a full header space through the
forwarding walk, so ACL effects are computed *exactly*: it reports the
precise traffic slices that are denied at the edge, accepted end-to-end,
or leaked — no packet sampling involved.

Run:  python examples/firewall_audit.py
"""

from repro import ModelFreeBackend
from repro.dataplane.forwarding import Disposition, ForwardingWalk
from repro.net.addr import parse_ipv4
from repro.net.headerspace import Packet
from repro.protocols.timers import FAST_TIMERS
from repro.topo.builder import TopologyBuilder

EDGE = """\
hostname edge
ip routing
router isis default
   net 49.0001.0000.0000.0001.00
   address-family ipv4 unicast
ip access-list INTERNET-IN
   10 deny tcp any any eq 22
   20 deny tcp any any eq 23
   30 deny ip 198.51.100.0/24 any
   40 permit tcp any host 2.2.2.2 eq 443
   50 permit icmp any any
   60 deny ip any any
interface Loopback0
   ip address 2.2.2.1/32
   isis enable default
   isis passive
interface Ethernet1
   no switchport
   ip address 10.0.0.0/31
   isis enable default
interface Ethernet2
   no switchport
   ip address 203.0.113.0/31
   ip access-group INTERNET-IN in
"""

SERVER = """\
hostname server
ip routing
router isis default
   net 49.0001.0000.0000.0002.00
   address-family ipv4 unicast
interface Loopback0
   ip address 2.2.2.2/32
   isis enable default
   isis passive
interface Ethernet1
   no switchport
   ip address 10.0.0.1/31
   isis enable default
"""

# A stub "internet" router so packets can enter through the ACL'd port.
INTERNET = """\
hostname internet
ip routing
interface Ethernet1
   no switchport
   ip address 203.0.113.1/31
ip route 2.2.2.0/24 203.0.113.0
"""


def main() -> None:
    builder = TopologyBuilder("firewall-audit")
    builder.node("edge", config=EDGE)
    builder.node("server", config=SERVER)
    builder.node("internet", config=INTERNET)
    builder.link("edge", "server", a_int="Ethernet1", z_int="Ethernet1")
    builder.link("edge", "internet", a_int="Ethernet2", z_int="Ethernet1")

    backend = ModelFreeBackend(
        builder.build(), timers=FAST_TIMERS, quiet_period=5.0
    )
    snapshot = backend.run()
    walk = ForwardingWalk(snapshot.dataplane)
    result = walk.walk("internet", parse_ipv4("2.2.2.2"))

    spaces = result.spaces_by_disposition()
    print("Traffic from the internet toward the service (2.2.2.2):\n")
    for disposition in sorted(spaces, key=lambda d: d.value):
        space = spaces[disposition]
        sample = space.sample()
        print(f"  {disposition.value:<12} e.g. {sample}")
    print()

    probes = {
        "HTTPS to the service": Packet(
            dst_ip=parse_ipv4("2.2.2.2"), ip_proto=6, dst_port=443
        ),
        "SSH to the service": Packet(
            dst_ip=parse_ipv4("2.2.2.2"), ip_proto=6, dst_port=22
        ),
        "HTTPS from the blocked /24": Packet(
            dst_ip=parse_ipv4("2.2.2.2"),
            src_ip=parse_ipv4("198.51.100.7"),
            ip_proto=6,
            dst_port=443,
        ),
        "ICMP ping": Packet(dst_ip=parse_ipv4("2.2.2.2"), ip_proto=1),
    }
    print("Spot checks (decided from the exact spaces, not re-simulated):")
    for label, packet in probes.items():
        verdicts = [
            disposition.value
            for disposition, space in spaces.items()
            if space.contains_packet(packet)
        ]
        print(f"  {label:<28} -> {', '.join(verdicts)}")

    denied = spaces.get(Disposition.DENIED_IN)
    accepted = spaces.get(Disposition.ACCEPTED)
    assert denied is not None and accepted is not None
    assert (denied & accepted).is_empty(), "slices must partition traffic"
    print("\nThe denied and accepted slices are disjoint and exhaustive —")
    print("that is formal ACL verification over emulation-extracted state.")


if __name__ == "__main__":
    main()
