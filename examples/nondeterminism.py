#!/usr/bin/env python3
"""D1 (§6): explore convergence nondeterminism with seeded multi-runs.

One emulation run yields one converged dataplane; message ordering can
admit others. This example runs the same scenario under several seeds
(different message timing) and diffs every pair of resulting dataplanes
— the paper's proposed mitigation, made concrete.

Run:  python examples/nondeterminism.py
"""

from repro import ModelFreeBackend, explore_nondeterminism
from repro.corpus import fig3_scenario
from repro.protocols.timers import FAST_TIMERS


def main() -> None:
    scenario = fig3_scenario()
    backend = ModelFreeBackend(
        scenario.topology, timers=FAST_TIMERS, quiet_period=5.0
    )
    seeds = (0, 1, 2, 3, 4)
    print(f"Running {len(seeds)} seeded emulations of {scenario.topology}...")
    result = explore_nondeterminism(backend, seeds=seeds)

    for snapshot in result.snapshots:
        print(
            f"  seed {snapshot.seed}: converged in "
            f"{snapshot.convergence_seconds:.2f} sim-s "
            f"({len(snapshot.afts)} AFTs)"
        )

    print()
    print("Pairwise dataplane comparison:")
    for (a, b), rows in sorted(result.divergences.items()):
        verdict = "equivalent" if not rows else f"{len(rows)} differences"
        print(f"  seed {a} vs seed {b}: {verdict}")

    print()
    print("Summary:", result.summary())
    if result.deterministic:
        print(
            "All seeds agree — high confidence the converged state is "
            "unique for this configuration and context."
        )
    else:
        print(
            "Seeds disagree — this configuration has ordering-dependent "
            "behaviour worth investigating before trusting one run."
        )


if __name__ == "__main__":
    main()
