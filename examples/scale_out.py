#!/usr/bin/env python3
"""E4a: emulation scale-out on a Kubernetes-style cluster.

Reproduces the paper's capacity results: 60 Arista routers on a single
e2-standard-32, a thousand devices across a 17-node cluster, and the
bring-up timing model behind the 12-17 minute one-time startup.

Run:  python examples/scale_out.py
"""

from repro.kube.cluster import KubeCluster, e2_standard_32
from repro.kube.kne import KneDeployment
from repro.kube.scheduler import Scheduler, UnschedulableError
from repro.kube.pod import Pod
from repro.protocols.timers import FAST_TIMERS
from repro.topo.builder import fabric_topology, wan_topology
from repro.vendors.quirks import quirks_for


def main() -> None:
    quirks = quirks_for("arista")
    print(
        f"Arista cEOS container footprint: {quirks.container_cpu} vCPU / "
        f"{quirks.container_memory_gb} GB (paper §5)"
    )

    # --- single-node capacity ------------------------------------------
    single = KubeCluster(nodes=[e2_standard_32()])
    capacity = Scheduler(single).capacity_for(
        quirks.container_cpu, quirks.container_memory_gb
    )
    print(f"One e2-standard-32 fits {capacity} routers (paper: up to 60)")

    # --- bring up a 60-router fabric on that node -----------------------
    print("\nDeploying a 60-router leaf/spine fabric on one node...")
    deployment = KneDeployment(
        fabric_topology(6, 54), cluster=KubeCluster(nodes=[e2_standard_32()]),
        timers=FAST_TIMERS,
    )
    result = deployment.deploy()
    print(
        f"  up in {result.startup_seconds / 60:.1f} simulated minutes "
        f"on {result.nodes_used} node"
    )

    # --- the 61st router does not fit ------------------------------------
    over = KneDeployment(
        fabric_topology(6, 55), cluster=KubeCluster(nodes=[e2_standard_32()]),
        timers=FAST_TIMERS,
    )
    try:
        over.deploy()
    except UnschedulableError as exc:
        print(f"  61st router: {exc}")

    # --- 1,000 devices on 17 nodes ---------------------------------------
    print("\nScheduling 1,000 devices on a 17-node cluster...")
    cluster = KubeCluster.of_size(17)
    big = KneDeployment(
        wan_topology(1000, degree=3, seed=3), cluster=cluster,
        timers=FAST_TIMERS,
    )
    report = big.deploy()
    per_node = {}
    for pod_name, node in report.placements.items():
        del pod_name
        per_node[node] = per_node.get(node, 0) + 1
    print(
        f"  placed across {report.nodes_used} nodes "
        f"(min {min(per_node.values())} / max {max(per_node.values())} "
        f"pods per node), startup {report.startup_seconds / 60:.0f} sim-min"
    )


if __name__ == "__main__":
    main()
