#!/usr/bin/env python3
"""E4b: a production-replica convergence run with route injection.

A scaled-down version of the paper's 30-node multi-vendor replica:
Arista and Nokia routers in one AS (IS-IS + iBGP full mesh), with
external BGP peers streaming synthetic full tables through the fabric.
Reports the two timings the paper gives: one-time infrastructure
startup, and convergence-after-configuration including route injection.

Run:  python examples/production_convergence.py [nodes] [routes-per-peer]
"""

import sys

from repro import ModelFreeBackend, ScenarioContext
from repro.corpus import production_scenario
from repro.corpus.production import scaled_timers
from repro.obs import summary_text, tracing


def main() -> None:
    nodes = int(sys.argv[1]) if len(sys.argv) > 1 else 12
    routes = int(sys.argv[2]) if len(sys.argv) > 2 else 5_000

    print(
        f"Building a {nodes}-node multi-vendor replica with 2 external "
        f"peers x {routes} routes (standing in for millions; session "
        "throughput scaled to match)"
    )
    scenario = production_scenario(
        nodes, peers=2, routes_per_peer=routes, seed=7
    )
    vendors = {}
    for spec in scenario.topology.nodes:
        vendors[spec.vendor] = vendors.get(spec.vendor, 0) + 1
    print("Vendors:", ", ".join(f"{v} x{n}" for v, n in sorted(vendors.items())))

    context = ScenarioContext(
        name="production", injectors=tuple(scenario.injectors)
    )
    backend = ModelFreeBackend(
        scenario.topology, timers=scaled_timers(routes), quiet_period=30.0
    )
    print("Deploying and converging (this simulates minutes of real time)...")
    with tracing() as tracer:
        snapshot = backend.run(context, seed=2)

    print()
    print(f"One-time startup : {snapshot.startup_seconds / 60:5.1f} sim-min "
          "(paper: 12-17 min)")
    print(f"Convergence      : {snapshot.convergence_seconds / 60:5.1f} sim-min "
          "(paper: ~3 min at 30 nodes)")
    print(f"Routes injected  : {snapshot.metadata['injected_routes']}")

    print()
    print(summary_text(tracer, title="Observability summary"))

    deployment = backend.last_run.deployment
    sizes = sorted(len(r.rib.fib) for r in deployment.routers.values())
    print(f"FIB sizes        : min {sizes[0]}, max {sizes[-1]}")

    # The operator interface still works at this scale — on either vendor.
    sample_arista = next(
        r for r in deployment.routers.values() if r.vendor == "arista"
    )
    sample_nokia = next(
        r for r in deployment.routers.values() if r.vendor == "nokia"
    )
    print()
    print(f"{sample_arista.name}# show ip bgp summary")
    print(deployment.ssh(sample_arista.name).execute("show ip bgp summary"))
    print(f"{sample_nokia.name}# show network-instance default protocols bgp neighbor")
    print(
        deployment.ssh(sample_nokia.name).execute(
            "show network-instance default protocols bgp neighbor"
        )
    )


if __name__ == "__main__":
    main()
