#!/usr/bin/env python3
"""Pre-deployment change verification (the paper's Fig. 2 / E1 flow).

An operator is about to push a change that (unknowingly) takes down the
eBGP session between r2 and r3 in a three-AS network. Both the current
and the candidate configurations are run through the model-free
pipeline, and differential reachability pinpoints exactly which traffic
the change breaks — before anything touches production.

Run:  python examples/differential_reachability.py
"""

from repro import ModelFreeBackend, Session
from repro.corpus import fig2_scenario
from repro.protocols.timers import FAST_TIMERS


def main() -> None:
    scenario = fig2_scenario()
    print("Network: 6 Arista routers across three ASes")
    for asn, members in scenario.as_members.items():
        print(f"  AS{asn}: {', '.join(members)}")
    print()

    print("Emulating the CURRENT configurations...")
    current = ModelFreeBackend(
        scenario.topology, timers=FAST_TIMERS, quiet_period=5.0
    ).run(snapshot_name="current")
    print(
        f"  converged in {current.convergence_seconds:.1f} sim-s, "
        f"{len(current.afts)} dataplanes extracted"
    )

    print("Emulating the CANDIDATE configurations (the 'bad change')...")
    candidate = ModelFreeBackend(
        scenario.buggy_topology(), timers=FAST_TIMERS, quiet_period=5.0
    ).run(snapshot_name="candidate")
    print(f"  converged in {candidate.convergence_seconds:.1f} sim-s")
    print()

    bf = Session()
    bf.init_snapshot(current, name="current")
    bf.init_snapshot(candidate, name="candidate")
    answer = bf.q.differentialReachability().answer(
        snapshot="candidate", reference_snapshot="current"
    )
    print("== differentialReachability(candidate vs current) ==")
    print(answer)
    print()

    regressed = [row for row in answer.frame() if row["Regressed"]]
    if regressed:
        print(
            f"VERDICT: do not ship — the change breaks {len(regressed)} "
            "classes of traffic, including AS65003 -> AS65002:"
        )
        for row in regressed:
            print(
                f"  {row['Ingress']} -> {row['Destination']} "
                f"(+{row['Covered_Addresses'] - 1} more destinations): "
                f"{row['Reference_Dispositions']} becomes "
                f"{row['Snapshot_Dispositions']}"
            )
    else:
        print("VERDICT: no reachability change — safe to ship.")


if __name__ == "__main__":
    main()
